module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

(* --- lexical helpers --- *)

let reg_table =
  let table = Hashtbl.create 40 in
  List.iter
    (fun i ->
      let r = Reg.of_int i in
      Hashtbl.replace table (Reg.name r) r)
    (List.init Reg.count Fun.id);
  table

let parse_reg s =
  match Hashtbl.find_opt reg_table s with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "unknown register %S" s)

let parse_int s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad integer %S" s)

let parse_imm s =
  if String.length s > 1 && s.[0] = '#' then
    parse_int (String.sub s 1 (String.length s - 1))
  else Error (Printf.sprintf "expected immediate, got %S" s)

let parse_target s =
  if String.length s > 2 && s.[0] = '0' && s.[1] = 'x' then
    match int_of_string_opt s with
    | Some a -> Ok (Instr.Addr a)
    | None -> Error (Printf.sprintf "bad address %S" s)
  else if s <> "" then Ok (Instr.Label s)
  else Error "empty target"

let parse_operand s =
  if String.length s > 0 && s.[0] = '#' then
    Result.map (fun n -> Instr.Imm n) (parse_imm s)
  else Result.map (fun r -> Instr.Reg r) (parse_reg s)

(* "4(sp)" -> (4, sp) *)
let parse_mem s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
    let off = String.sub s 0 i in
    let base = String.sub s (i + 1) (String.length s - i - 2) in
    Result.bind (parse_int off) (fun offset ->
        Result.map (fun base -> (offset, base)) (parse_reg base))
  | _ -> Error (Printf.sprintf "expected OFFSET(REG), got %S" s)

let tokens line =
  String.map (function ',' -> ' ' | c -> c) line
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let alu_table =
  let table = Hashtbl.create 16 in
  List.iter (fun op -> Hashtbl.replace table (Op.alu_name op) op) Op.all_alu;
  table

let cond_table =
  let table = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace table ("b" ^ Op.cond_name c) c) Op.all_cond;
  table

let ( let* ) = Result.bind

let parse_instr line =
  match tokens line with
  | [] -> Error "empty instruction"
  | mnemonic :: args -> (
    match (Hashtbl.find_opt alu_table mnemonic, Hashtbl.find_opt cond_table mnemonic, args) with
    | Some op, _, [ d; s1; s2 ] ->
      let* dst = parse_reg d in
      let* src1 = parse_reg s1 in
      let* src2 = parse_operand s2 in
      Ok (Instr.Alu { op; dst; src1; src2 })
    | Some _, _, _ -> Error (mnemonic ^ " expects 3 operands")
    | None, Some cond, [ s1; s2; t ] ->
      let* src1 = parse_reg s1 in
      let* src2 = parse_reg s2 in
      let* target = parse_target t in
      Ok (Instr.Br { cond; src1; src2; target })
    | None, Some _, _ -> Error (mnemonic ^ " expects 3 operands")
    | None, None, _ -> (
      match (mnemonic, args) with
      | "li", [ d; imm ] ->
        let* dst = parse_reg d in
        let* imm = parse_imm imm in
        Ok (Instr.Li { dst; imm })
      | "la", [ d; t ] ->
        let* dst = parse_reg d in
        let* target = parse_target t in
        Ok (Instr.La { dst; target })
      | "ld", [ d; mem ] ->
        let* dst = parse_reg d in
        let* offset, base = parse_mem mem in
        Ok (Instr.Load { dst; base; offset })
      | "st", [ s; mem ] ->
        let* src = parse_reg s in
        let* offset, base = parse_mem mem in
        Ok (Instr.Store { src; base; offset })
      | "jmp", [ t ] ->
        let* target = parse_target t in
        Ok (Instr.Jmp { target })
      | "call", [ t ] ->
        let* target = parse_target t in
        Ok (Instr.Call { target })
      | "ret", [] -> Ok Instr.Ret
      | "nop", [] -> Ok Instr.Nop
      | "halt", [] -> Ok Instr.Halt
      | _ -> Error (Printf.sprintf "cannot parse %S" (String.trim line))))

(* --- program-level parsing --- *)

type pstate = {
  mutable funcs_rev : Func.t list;
  mutable current_func : string option;
  mutable blocks_rev : Block.t list;
  mutable current_label : string option;
  mutable instrs_rev : Instr.t list;
  mutable entry : string option;
  mutable data_break : int;
  mutable data_init_rev : (int * int) list;
  mutable auto_labels : int;
}

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let close_block st =
  match st.current_label with
  | None ->
    if st.instrs_rev <> [] then Error "instructions before any label"
    else Ok ()
  | Some label ->
    st.blocks_rev <- Block.v label (List.rev st.instrs_rev) :: st.blocks_rev;
    st.current_label <- None;
    st.instrs_rev <- [];
    Ok ()

let close_func st =
  let* () = close_block st in
  match st.current_func with
  | None ->
    if st.blocks_rev <> [] then Error "blocks before any .func" else Ok ()
  | Some name ->
    if st.blocks_rev = [] then Error (Printf.sprintf "function %s has no blocks" name)
    else begin
      st.funcs_rev <- Func.v name (List.rev st.blocks_rev) :: st.funcs_rev;
      st.current_func <- None;
      st.blocks_rev <- [];
      Ok ()
    end

let parse_line st line =
  let line = String.trim (strip_comment line) in
  if line = "" then Ok ()
  else if String.length line > 0 && line.[0] = '.' then
    match tokens line with
    | [ ".func"; name ] ->
      let* () = close_func st in
      st.current_func <- Some name;
      Ok ()
    | [ ".entry"; name ] ->
      st.entry <- Some name;
      Ok ()
    | [ ".data"; n ] ->
      let* break_ = parse_int n in
      st.data_break <- break_;
      Ok ()
    | [ ".init"; addr; value ] ->
      let* addr = parse_int addr in
      let* value = parse_int value in
      st.data_init_rev <- (addr, value) :: st.data_init_rev;
      Ok ()
    | _ -> Error (Printf.sprintf "bad directive %S" line)
  else if String.length line > 1 && line.[String.length line - 1] = ':' then begin
    let* () = close_block st in
    st.current_label <- Some (String.sub line 0 (String.length line - 1));
    Ok ()
  end
  else
    match st.current_label with
    | None -> Error "instruction outside any block (missing label?)"
    | Some label ->
      (* Blocks carry at most one control instruction, always last;
         like any assembler we split automatically at control
         instructions, deriving a fresh label for the continuation. *)
      let* () =
        match st.instrs_rev with
        | last :: _ when Instr.is_control last ->
          let* () = close_block st in
          st.auto_labels <- st.auto_labels + 1;
          st.current_label <- Some (Printf.sprintf "%s$auto%d" label st.auto_labels);
          Ok ()
        | _ -> Ok ()
      in
      let* i = parse_instr line in
      st.instrs_rev <- i :: st.instrs_rev;
      Ok ()

let parse_program source =
  let st =
    {
      funcs_rev = [];
      current_func = None;
      blocks_rev = [];
      current_label = None;
      instrs_rev = [];
      entry = None;
      data_break = 16;
      data_init_rev = [];
      auto_labels = 0;
    }
  in
  let lines = String.split_on_char '\n' source in
  let rec go n = function
    | [] -> (
      match close_func st with
      | Error message -> Error { line = n; message }
      | Ok () -> (
        match st.entry with
        | None -> Error { line = n; message = "missing .entry directive" }
        | Some entry -> (
          try
            Ok
              (Program.v
                 ~data_init:(List.rev st.data_init_rev)
                 ~data_break:st.data_break ~entry
                 (List.rev st.funcs_rev))
          with Invalid_argument message -> Error { line = n; message })))
    | line :: rest -> (
      match (try parse_line st line with Invalid_argument m -> Error m) with
      | Error message -> Error { line = n; message }
      | Ok () -> go (n + 1) rest)
  in
  go 1 lines

(* --- printing --- *)

let print_program (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".data %d\n" p.Program.data_break);
  List.iter
    (fun (addr, v) -> Buffer.add_string buf (Printf.sprintf ".init %d %d\n" addr v))
    p.Program.data_init;
  List.iter
    (fun f ->
      Buffer.add_string buf (Printf.sprintf ".func %s\n" (Func.name f));
      List.iter
        (fun b ->
          Buffer.add_string buf (Block.label b);
          Buffer.add_string buf ":\n";
          List.iter
            (fun i ->
              Buffer.add_string buf "  ";
              Buffer.add_string buf (Instr.to_string i);
              Buffer.add_char buf '\n')
            (Block.body b))
        (Func.blocks f))
    p.Program.funcs;
  Buffer.add_string buf (Printf.sprintf ".entry %s\n" p.Program.entry);
  Buffer.contents buf
