module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg

(* Register budget: virtual registers are pinned to r8..r28; r29..r31
   are reserved scratch for stack-slot traffic. *)
let last_alloc_temp = 28
let scratch1 = Reg.of_int 29
let scratch2 = Reg.of_int 30
let scratch3 = Reg.of_int 31

type loc = Phys of Reg.t | Slot of int

type vreg = { loc : loc }

type operand = V of vreg | K of int

type cond_spec = Op.cond * vreg * operand

type fb = {
  fname : string;
  mutable cur_label : string;
  mutable cur_rev : Instr.t list;
  mutable blocks_rev : Block.t list;
  mutable label_counter : int;
  mutable frame_words : int;
  used : bool array;  (* phys temps touched, to be saved/restored *)
  mutable next_temp : int;
  mutable loops : (string * string) list;  (* (continue target, break target) *)
  epilogue_label : string;
}

type t = {
  mutable funcs_rev : Func.t list;
  mutable data_break : int;
  mutable data_init_rev : (int * int) list;
}

let create () = { funcs_rev = []; data_break = 16; data_init_rev = [] }

let global t ~words =
  assert (words > 0);
  let addr = t.data_break in
  t.data_break <- t.data_break + words;
  addr

let global_init t values =
  let addr = global t ~words:(max 1 (List.length values)) in
  List.iteri (fun i v -> t.data_init_rev <- (addr + i, v) :: t.data_init_rev) values;
  addr

(* --- function-level plumbing --- *)

let emit fb i = fb.cur_rev <- i :: fb.cur_rev

let fresh fb =
  fb.label_counter <- fb.label_counter + 1;
  Printf.sprintf "%s$L%d" fb.fname fb.label_counter

let close fb ~next =
  fb.blocks_rev <- Block.v fb.cur_label (List.rev fb.cur_rev) :: fb.blocks_rev;
  fb.cur_label <- next;
  fb.cur_rev <- []

let mark fb r =
  let i = Reg.to_int r in
  if i >= Reg.first_temp then fb.used.(i) <- true

let vreg fb =
  if fb.next_temp <= last_alloc_temp then begin
    let r = Reg.of_int fb.next_temp in
    fb.next_temp <- fb.next_temp + 1;
    mark fb r;
    { loc = Phys r }
  end
  else begin
    let off = fb.frame_words in
    fb.frame_words <- fb.frame_words + 1;
    mark fb scratch1;
    mark fb scratch2;
    mark fb scratch3;
    { loc = Slot off }
  end

(* Read a virtual register into a physical one, loading spilled values
   into the given scratch register. *)
let reg_of_v fb ~scratch v =
  match v.loc with
  | Phys r -> r
  | Slot off ->
    emit fb (Instr.Load { dst = scratch; base = Reg.sp; offset = off });
    scratch

(* A physical register to compute a result into, plus the commit action
   that stores it back when the destination is spilled. *)
let def_reg fb v =
  match v.loc with
  | Phys r -> (r, fun () -> ())
  | Slot off ->
    ( scratch3,
      fun () -> emit fb (Instr.Store { src = scratch3; base = Reg.sp; offset = off }) )

let li fb v imm =
  let rd, commit = def_reg fb v in
  emit fb (Instr.Li { dst = rd; imm });
  commit ()

let la fb v label =
  let rd, commit = def_reg fb v in
  emit fb (Instr.La { dst = rd; target = Instr.Label label });
  commit ()

let alu fb op dst a b =
  let r1 = reg_of_v fb ~scratch:scratch1 a in
  let src2 =
    match b with
    | V v -> Instr.Reg (reg_of_v fb ~scratch:scratch2 v)
    | K n -> Instr.Imm n
  in
  let rd, commit = def_reg fb dst in
  emit fb (Instr.Alu { op; dst = rd; src1 = r1; src2 });
  commit ()

let addi fb dst src n = alu fb Op.Add dst src (K n)

let mov fb dst src = addi fb dst src 0

let mov_from_phys fb dst phys =
  let rd, commit = def_reg fb dst in
  emit fb (Instr.Alu { op = Op.Add; dst = rd; src1 = phys; src2 = Instr.Imm 0 });
  commit ()

let mov_to_phys fb phys src =
  let r = reg_of_v fb ~scratch:scratch1 src in
  emit fb (Instr.Alu { op = Op.Add; dst = phys; src1 = r; src2 = Instr.Imm 0 })

let load fb dst ~base ~off =
  let rb = reg_of_v fb ~scratch:scratch1 base in
  let rd, commit = def_reg fb dst in
  emit fb (Instr.Load { dst = rd; base = rb; offset = off });
  commit ()

let store fb src ~base ~off =
  let rs = reg_of_v fb ~scratch:scratch1 src in
  let rb = reg_of_v fb ~scratch:scratch2 base in
  emit fb (Instr.Store { src = rs; base = rb; offset = off })

let load_abs fb dst addr =
  let rd, commit = def_reg fb dst in
  emit fb (Instr.Load { dst = rd; base = Reg.zero; offset = addr });
  commit ()

let store_abs fb src addr =
  let rs = reg_of_v fb ~scratch:scratch1 src in
  emit fb (Instr.Store { src = rs; base = Reg.zero; offset = addr })

let local fb ~words =
  assert (words > 0);
  let off = fb.frame_words in
  fb.frame_words <- fb.frame_words + words;
  off

let local_addr fb dst off =
  let rd, commit = def_reg fb dst in
  emit fb (Instr.Alu { op = Op.Add; dst = rd; src1 = Reg.sp; src2 = Instr.Imm off });
  commit ()

(* --- control flow --- *)

let emit_branch fb (c, a, b) target =
  let r1 = reg_of_v fb ~scratch:scratch1 a in
  let r2 =
    match b with
    | V v -> reg_of_v fb ~scratch:scratch2 v
    | K n ->
      mark fb scratch2;
      emit fb (Instr.Li { dst = scratch2; imm = n });
      scratch2
  in
  emit fb (Instr.Br { cond = c; src1 = r1; src2 = r2; target = Instr.Label target })

let negate (c, a, b) = (Op.negate_cond c, a, b)

let new_label fb = fresh fb

let place_label fb label = close fb ~next:label

let goto fb label =
  emit fb (Instr.Jmp { target = Instr.Label label });
  close fb ~next:(fresh fb)

let branch fb spec label =
  emit_branch fb spec label;
  close fb ~next:(fresh fb)

let if_ fb spec then_ else_ =
  let else_l = fresh fb in
  let join_l = fresh fb in
  emit_branch fb (negate spec) else_l;
  close fb ~next:(fresh fb);
  then_ ();
  emit fb (Instr.Jmp { target = Instr.Label join_l });
  close fb ~next:else_l;
  else_ ();
  close fb ~next:join_l

let when_ fb spec then_ = if_ fb spec then_ (fun () -> ())

let while_ fb cond_fn body =
  let head_l = fresh fb in
  let exit_l = fresh fb in
  close fb ~next:head_l;
  let spec = cond_fn () in
  emit_branch fb (negate spec) exit_l;
  close fb ~next:(fresh fb);
  fb.loops <- (head_l, exit_l) :: fb.loops;
  body ();
  (match fb.loops with
  | _ :: rest -> fb.loops <- rest
  | [] -> assert false);
  emit fb (Instr.Jmp { target = Instr.Label head_l });
  close fb ~next:exit_l

let for_ fb v ~from ~below ?(step = 1) body =
  (match from with K n -> li fb v n | V u -> mov fb v u);
  let head_l = fresh fb in
  let inc_l = fresh fb in
  let exit_l = fresh fb in
  close fb ~next:head_l;
  emit_branch fb (Op.Ge, v, below) exit_l;
  close fb ~next:(fresh fb);
  fb.loops <- (inc_l, exit_l) :: fb.loops;
  body ();
  (match fb.loops with
  | _ :: rest -> fb.loops <- rest
  | [] -> assert false);
  close fb ~next:inc_l;
  addi fb v v step;
  emit fb (Instr.Jmp { target = Instr.Label head_l });
  close fb ~next:exit_l

let break_ fb =
  match fb.loops with
  | (_, exit_l) :: _ -> goto fb exit_l
  | [] -> invalid_arg "Builder.break_: not inside a loop"

let continue_ fb =
  match fb.loops with
  | (cont_l, _) :: _ -> goto fb cont_l
  | [] -> invalid_arg "Builder.continue_: not inside a loop"

(* --- calls and returns --- *)

let call_void fb name args =
  if List.length args > 5 then invalid_arg "Builder.call: more than 5 arguments";
  List.iteri (fun i a -> mov_to_phys fb (Reg.arg i) a) args;
  emit fb (Instr.Call { target = Instr.Label name });
  close fb ~next:(fresh fb)

let call fb name args =
  call_void fb name args;
  let r = vreg fb in
  mov_from_phys fb r Reg.ret_value;
  r

let ret fb value =
  (match value with
  | Some v -> mov_to_phys fb Reg.ret_value v
  | None -> ());
  emit fb (Instr.Jmp { target = Instr.Label fb.epilogue_label });
  close fb ~next:(fresh fb)

let halt fb =
  emit fb Instr.Halt;
  close fb ~next:(fresh fb)

(* --- function assembly --- *)

let func t name ~nargs body =
  if nargs < 0 || nargs > 5 then invalid_arg "Builder.func: bad argument count";
  let fb =
    {
      fname = name;
      cur_label = name ^ "$body";
      cur_rev = [];
      blocks_rev = [];
      label_counter = 0;
      frame_words = 0;
      used = Array.make Reg.count false;
      next_temp = Reg.first_temp;
      loops = [];
      epilogue_label = name ^ "$epilogue";
    }
  in
  let args = Array.init nargs (fun _ -> vreg fb) in
  Array.iteri (fun i v -> mov_from_phys fb v (Reg.arg i)) args;
  body fb args;
  (* Fall off the end of the body into the epilogue. *)
  close fb ~next:(fresh fb);
  let body_blocks = List.rev fb.blocks_rev in
  let saved =
    List.filter (fun r -> fb.used.(Reg.to_int r)) Reg.temps
  in
  let saved_base = fb.frame_words in
  let ra_slot = saved_base + List.length saved in
  let frame_size = ra_slot + 1 in
  let save_slot i = saved_base + i in
  let prologue =
    Block.v (name ^ "$prologue")
      (Instr.Alu { op = Op.Add; dst = Reg.sp; src1 = Reg.sp; src2 = Instr.Imm (-frame_size) }
      :: List.mapi
           (fun i r -> Instr.Store { src = r; base = Reg.sp; offset = save_slot i })
           saved
      @ [ Instr.Store { src = Reg.ra; base = Reg.sp; offset = ra_slot } ])
  in
  let epilogue =
    Block.v fb.epilogue_label
      (List.mapi
         (fun i r -> Instr.Load { dst = r; base = Reg.sp; offset = save_slot i })
         saved
      @ [
          Instr.Load { dst = Reg.ra; base = Reg.sp; offset = ra_slot };
          Instr.Alu { op = Op.Add; dst = Reg.sp; src1 = Reg.sp; src2 = Instr.Imm frame_size };
          Instr.Ret;
        ])
  in
  let f = Func.v name ((prologue :: body_blocks) @ [ epilogue ]) in
  t.funcs_rev <- f :: t.funcs_rev

let program t ~entry =
  Program.v
    ~data_init:(List.rev t.data_init_rev)
    ~data_break:t.data_break ~entry
    (List.rev t.funcs_rev)
