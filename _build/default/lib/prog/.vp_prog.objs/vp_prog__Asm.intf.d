lib/prog/asm.mli: Format Program Vp_isa
