lib/prog/block.ml: Format List Printf Vp_isa
