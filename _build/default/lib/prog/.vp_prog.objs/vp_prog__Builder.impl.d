lib/prog/builder.ml: Array Block Func List Printf Program Vp_isa
