lib/prog/block.mli: Format Vp_isa
