lib/prog/image.ml: Array Format List Printf Vp_isa
