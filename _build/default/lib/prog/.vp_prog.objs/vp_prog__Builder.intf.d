lib/prog/builder.mli: Program Vp_isa
