lib/prog/asm.ml: Block Buffer Format Fun Func Hashtbl List Printf Program Result String Vp_isa
