lib/prog/image.mli: Format Vp_isa
