lib/prog/program.ml: Array Block Format Func Hashtbl Image List Printf Vp_isa
