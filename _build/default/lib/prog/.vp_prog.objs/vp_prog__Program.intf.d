lib/prog/program.mli: Format Func Image
