lib/prog/func.mli: Block Format
