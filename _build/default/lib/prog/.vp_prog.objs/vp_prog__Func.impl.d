lib/prog/func.ml: Block Format List Printf
