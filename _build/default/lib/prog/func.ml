type t = { name : string; blocks : Block.t list }

let v name blocks =
  if blocks = [] then invalid_arg (Printf.sprintf "Func %s: no blocks" name);
  let labels = List.map Block.label blocks in
  let sorted = List.sort compare labels in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some l -> invalid_arg (Printf.sprintf "Func %s: duplicate label %s" name l)
  | None -> ());
  { name; blocks }

let name t = t.name
let blocks t = t.blocks

let entry_label t =
  match t.blocks with
  | b :: _ -> Block.label b
  | [] -> assert false

let size t = List.fold_left (fun acc b -> acc + Block.size b) 0 t.blocks

let find_block t label = List.find_opt (fun b -> Block.label b = label) t.blocks

let pp fmt t =
  Format.fprintf fmt "func %s:" t.name;
  List.iter (fun b -> Format.fprintf fmt "@\n%a" Block.pp b) t.blocks
