module Instr = Vp_isa.Instr

type t = { label : string; body : Instr.t list }

let check_body label body =
  let rec go = function
    | [] -> ()
    | [ _last ] -> ()
    | i :: rest ->
      if Instr.is_control i then
        invalid_arg
          (Printf.sprintf "Block %s: control instruction %s not last" label
             (Instr.to_string i))
      else go rest
  in
  go body

let v label body =
  check_body label body;
  { label; body }

let label t = t.label
let body t = t.body
let size t = List.length t.body

let terminator t =
  match List.rev t.body with
  | last :: _ when Instr.is_control last -> Some last
  | _ -> None

let falls_through t =
  match terminator t with
  | None -> true
  | Some (Instr.Br _) | Some (Instr.Call _) -> true
  | Some (Instr.Jmp _) | Some Instr.Ret | Some Instr.Halt -> false
  | Some _ -> true

let pp fmt t =
  Format.fprintf fmt "%s:" t.label;
  List.iter (fun i -> Format.fprintf fmt "@\n  %a" Instr.pp i) t.body
