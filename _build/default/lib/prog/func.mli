(** Functions, pre-layout: an ordered list of basic blocks.  The first
    block is the entry.  Layout places blocks consecutively in list
    order, so fall-through edges follow the list. *)

type t = { name : string; blocks : Block.t list }

val v : string -> Block.t list -> t
(** Raises [Invalid_argument] on an empty block list or duplicate
    labels within the function. *)

val name : t -> string
val blocks : t -> Block.t list
val entry_label : t -> string
val size : t -> int

val find_block : t -> string -> Block.t option

val pp : Format.formatter -> t -> unit
