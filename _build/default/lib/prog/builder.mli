(** Structured construction of programs in the simulated ISA.

    Workloads are written against this DSL: virtual registers,
    arithmetic, memory, structured control flow (if / while / for /
    break / continue and raw labels for irregular shapes), calls and
    returns.  The builder performs eager register allocation — each
    virtual register is pinned to a dedicated callee-saved temporary,
    overflowing into stack slots accessed through reserved scratch
    registers — and synthesises the calling convention:

    - arguments arrive in [Reg.arg 0..4] and are copied into fresh
      virtual registers at entry;
    - every function gets a {e prologue} block (allocate frame, save
      [ra] and every temporary it touches) and a single {e epilogue}
      block (restore, deallocate, [ret]);
    - call sites marshal arguments into the argument registers and
      read the result from [Reg.ret_value].

    The uniform prologue/epilogue matters beyond correctness: the
    paper's partial inliner keys on a callee having a prologue and an
    epilogue with a hot path between them. *)

type t
(** Program-level builder. *)

type fb
(** Function-level builder, valid only inside its {!func} callback. *)

type vreg
(** A virtual register, bound to one function. *)

type operand = V of vreg | K of int
(** Right-hand operands: a virtual register or an immediate. *)

type cond_spec = Vp_isa.Op.cond * vreg * operand
(** [(c, a, b)] reads as "a c b", e.g. [(Lt, i, K 10)]. *)

(** {1 Program level} *)

val create : unit -> t

val global : t -> words:int -> int
(** Allocate zero-initialised global data; returns its word address. *)

val global_init : t -> int list -> int
(** Allocate and initialise global data; returns its word address. *)

val func : t -> string -> nargs:int -> (fb -> vreg array -> unit) -> unit
(** Define a function.  The callback receives virtual registers
    already holding the arguments.  At most 5 arguments.  The body
    must end every path with {!ret} or {!halt}; a missing terminator
    falls into the epilogue (returning garbage), which {!func} permits
    but property tests avoid. *)

val program : t -> entry:string -> Program.t
(** Finish: returns the program.  Raises on an undefined entry. *)

(** {1 Values} *)

val vreg : fb -> vreg
(** Fresh virtual register (initial value unspecified). *)

val li : fb -> vreg -> int -> unit
val la : fb -> vreg -> string -> unit
val mov : fb -> vreg -> vreg -> unit

val alu : fb -> Vp_isa.Op.alu -> vreg -> vreg -> operand -> unit
(** [alu fb op dst a b] emits [dst := a op b]. *)

val addi : fb -> vreg -> vreg -> int -> unit
(** Shorthand for [alu fb Add dst src (K n)]. *)

(** {1 Memory} *)

val load : fb -> vreg -> base:vreg -> off:int -> unit
val store : fb -> vreg -> base:vreg -> off:int -> unit

val load_abs : fb -> vreg -> int -> unit
(** Load from an absolute data address (global). *)

val store_abs : fb -> vreg -> int -> unit

val local : fb -> words:int -> int
(** Allocate frame-local storage; returns its frame offset for use
    with {!local_addr}. *)

val local_addr : fb -> vreg -> int -> unit
(** [local_addr fb dst off] sets [dst] to the absolute address of the
    frame slot [off] (i.e. [sp + off]). *)

(** {1 Control flow} *)

val if_ : fb -> cond_spec -> (unit -> unit) -> (unit -> unit) -> unit
(** [if_ fb cond then_ else_].  The {e then} arm is the fall-through
    direction; the branch jumps to the {e else} arm.  Workloads make a
    branch taken-biased by putting the common path in [else_]. *)

val when_ : fb -> cond_spec -> (unit -> unit) -> unit
(** [if_] with an empty else arm. *)

val while_ : fb -> (unit -> cond_spec) -> (unit -> unit) -> unit
(** Top-tested loop.  The condition thunk is invoked once and must
    emit the condition computation; it runs in the loop-head block. *)

val for_ : fb -> vreg -> from:operand -> below:operand -> ?step:int ->
  (unit -> unit) -> unit
(** Counted loop: [for v = from; v < below; v += step].  A [V] bound
    is re-read each iteration. *)

val break_ : fb -> unit
val continue_ : fb -> unit

val new_label : fb -> string
val place_label : fb -> string -> unit
(** Close the current block and start a block with this label. *)

val goto : fb -> string -> unit
val branch : fb -> cond_spec -> string -> unit
(** Conditional branch to a label; execution falls through otherwise. *)

(** {1 Calls and returns} *)

val call : fb -> string -> vreg list -> vreg
(** Call a function and capture its result in a fresh register. *)

val call_void : fb -> string -> vreg list -> unit

val ret : fb -> vreg option -> unit

val halt : fb -> unit
(** Stop the machine; only meaningful in the entry function. *)
