(** Basic blocks, pre-layout.

    A block has a globally unique label and a straight-line body.  Per
    the paper's definition, a block contains at most one control
    instruction (branch, jump, call or return), which is always last.
    A block whose body has no terminator falls through to the next
    block of its function in layout order. *)

type t = { label : string; body : Vp_isa.Instr.t list }

val v : string -> Vp_isa.Instr.t list -> t
(** [v label body] checks the single-trailing-terminator invariant and
    raises [Invalid_argument] when it is violated. *)

val label : t -> string
val body : t -> Vp_isa.Instr.t list
val size : t -> int

val terminator : t -> Vp_isa.Instr.t option
(** The trailing control instruction, if any. *)

val falls_through : t -> bool
(** True when execution can continue into the next block: no
    terminator, or a conditional branch or call terminator. *)

val pp : Format.formatter -> t -> unit
