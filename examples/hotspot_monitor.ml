(* Watch the Hot Spot Detector hardware at work — through the runtime
   telemetry layer.  A telemetry-enabled profiling run samples the
   detector every interval (HDC value, BBB occupancy, candidate count)
   and stamps every detection/recording/re-arm event with its
   retired-branch index; this example renders those series as
   sparklines, lists the first events, and then reruns the detector
   under the hardware snapshot history of [4] to show the recording
   traffic it saves.

     dune exec examples/hotspot_monitor.exe *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Emulator = Vp_exec.Emulator
module Detector = Vp_hsd.Detector
module Snapshot = Vp_hsd.Snapshot

let () =
  let w = Option.get (Registry.find ~bench:"mpeg2dec" ~input:"A") in
  let image = Program.layout (w.Registry.program ()) in

  (* One profiling run with telemetry on: the driver owns the timeline
     and installs the detector hooks for us. *)
  let config =
    Vacuum.Config.with_telemetry
      (Vp_telemetry.on ~interval:10_000 ())
      Vacuum.Config.default
  in
  let profile = Vacuum.Driver.profile ~config image in
  let tl = profile.Vacuum.Driver.timeline in
  let outcome = profile.Vacuum.Driver.outcome in

  Printf.printf "instructions retired: %d (%d intervals of %d)\n"
    outcome.Emulator.instructions (Vp_telemetry.intervals tl)
    (Vp_telemetry.interval_length tl);
  Printf.printf "raw detections:       %d\n" profile.Vacuum.Driver.detections;
  Printf.printf "snapshots recorded:   %d\n\n"
    (List.length profile.Vacuum.Driver.snapshots);

  Printf.printf "=== detector state per interval ===\n";
  let bar name =
    let values = Option.value ~default:[||] (Vp_telemetry.Series.find tl name) in
    Printf.printf "%-22s|%s|\n" name (Vp_telemetry.Render.sparkline values)
  in
  bar "profile.hdc";
  bar "profile.bbb_occupancy";
  bar "profile.bbb_candidates";
  bar "profile.branches";

  Printf.printf "\n=== first detector events (at = retired-branch index) ===\n";
  List.iteri
    (fun i (kind, at, value) ->
      if i < 9 then Printf.printf "  %-8s at branch %8d (value %d)\n" kind at value)
    (Vp_telemetry.Event.all tl);
  List.iter
    (fun kind ->
      Printf.printf "  %-8s %d total\n" kind (Vp_telemetry.Event.count tl ~kind))
    [ "detect"; "record"; "rearm" ];

  Printf.printf "\n=== first snapshot (BBB contents at detection) ===\n";
  (match profile.Vacuum.Driver.snapshots with
  | [] -> print_endline "  (none)"
  | snap :: _ ->
    Printf.printf "hot spot %d, detected at branch %d, extent %d branches:\n"
      snap.Snapshot.id snap.Snapshot.detected_at (Snapshot.extent snap);
    List.iter
      (fun e ->
        let f = Snapshot.taken_fraction e in
        let where =
          match Image.sym_at image e.Snapshot.pc with
          | Some s -> s.Image.name
          | None -> "?"
        in
        Printf.printf "  branch 0x%-5x in %-18s exec %3d taken %3d (%.2f %s)\n"
          e.Snapshot.pc where e.Snapshot.executed e.Snapshot.taken f
          (match Snapshot.bias e with
          | Snapshot.Taken -> "taken-biased"
          | Snapshot.Not_taken -> "fall-biased"
          | Snapshot.Unbiased -> "unbiased"))
      snap.Snapshot.branches);

  (* The BBB enhancement of [4]: a short history of recorded hot spots
     suppresses re-recording of the phase the hardware just saw.  The
     record-event count is exactly the recording traffic. *)
  Printf.printf "\n=== hardware snapshot history (recording traffic) ===\n";
  List.iter
    (fun h ->
      let same = Vp_phase.Similarity.same in
      let d = Detector.create ~history_size:h ~same () in
      let records = ref 0 in
      Detector.set_hooks d ~on_record:(fun ~branches:_ ~id:_ -> incr records);
      let (_ : Emulator.outcome) =
        Emulator.run
          ~on_branch:(fun ~pc ~taken -> Detector.on_branch d ~pc ~taken)
          image
      in
      Printf.printf "  history %d -> %4d recordings (of %d detections)\n" h
        !records (Detector.detections d))
    [ 0; 1; 2; 4 ]
