(* Tests for the declarative vpack command-line table: the pure
   Spec.parse tokenizer and arity rules, the dispatcher's exit codes,
   and golden help text — pinned so a usage string only changes when
   someone edits the spec table on purpose. *)

module Spec = Vp_cli.Spec

let tool = Vp_cli.Vpack.tool

let cmd name =
  match Spec.find_cmd tool name with
  | Some c -> c
  | None -> Alcotest.failf "no '%s' command in the table" name

let parse_ok c args =
  match Spec.parse c args with
  | Ok m -> m
  | Error e -> Alcotest.failf "parse failed: %s" e

let parse_err c args =
  match Spec.parse c args with
  | Ok _ -> Alcotest.fail "parse unexpectedly succeeded"
  | Error e -> e

(* ---- tokenizer and accessors ---- *)

let test_flag_forms () =
  let m =
    parse_ok (cmd "serve")
      [ "-w"; "li"; "--epochs=3"; "-j4"; "--backend"; "compiled"; "--no-oracle" ]
  in
  Alcotest.(check (list string)) "workloads" [ "li" ] (Spec.values m "workload");
  Alcotest.(check (option string)) "epochs" (Some "3") (Spec.value m "epochs");
  Alcotest.(check int) "jobs" 4 (Spec.int_value m "jobs" ~default:0);
  Alcotest.(check (option string))
    "backend" (Some "compiled") (Spec.value m "backend");
  Alcotest.(check bool) "no-oracle" true (Spec.flag_set m "no-oracle");
  Alcotest.(check bool) "absent flag" false (Spec.flag_set m "trace-dir");
  Alcotest.(check (option string)) "absent value" None (Spec.value m "trace-dir")

let test_repeatable_order () =
  (* every spelling of the same flag lands in one slot, in command-line
     order; accessors answer to any of its names *)
  let m = parse_ok (cmd "serve") [ "-w"; "li"; "--workload"; "go"; "-wperl" ] in
  Alcotest.(check (list string))
    "order" [ "li"; "go"; "perl" ] (Spec.values m "w");
  Alcotest.(check (list string))
    "same slot" [ "li"; "go"; "perl" ] (Spec.values m "workload")

let test_unknown_flag () =
  Alcotest.(check string) "message" "unknown option '--frobnicate'"
    (parse_err (cmd "serve") [ "-w"; "li"; "--frobnicate" ])

let test_missing_required () =
  Alcotest.(check string) "message" "missing required option '--workload'"
    (parse_err (cmd "serve") [ "--epochs"; "3" ])

let test_bool_takes_no_value () =
  Alcotest.(check string) "message" "option '--no-oracle=yes' takes no value"
    (parse_err (cmd "serve") [ "-w"; "li"; "--no-oracle=yes" ])

let test_non_repeatable_given_twice () =
  Alcotest.(check string) "message" "option '--epochs' given more than once"
    (parse_err (cmd "serve") [ "-w"; "li"; "--epochs"; "1"; "--epochs"; "2" ])

let test_check_rejects_value () =
  Alcotest.(check string) "message"
    "option '--epochs': expected an integer, got \"many\""
    (parse_err (cmd "serve") [ "-w"; "li"; "--epochs"; "many" ])

let test_missing_value () =
  Alcotest.(check string) "message" "option '--epochs' needs a N value"
    (parse_err (cmd "serve") [ "-w"; "li"; "--epochs" ])

let test_positional_required () =
  Alcotest.(check string) "message" "missing WORKLOAD argument"
    (parse_err (cmd "verify") [])

let test_positional_after_terminator () =
  let m = parse_ok (cmd "verify") [ "--"; "--not-a-flag" ] in
  Alcotest.(check (list string))
    "positional" [ "--not-a-flag" ] (Spec.positional m)

let test_unexpected_positional () =
  Alcotest.(check string) "message" "unexpected argument 'stray'"
    (parse_err (cmd "list") [ "stray" ])

let test_help_short_circuits_arity () =
  (* --help must work even when required flags are missing *)
  let m = parse_ok (cmd "serve") [ "--help" ] in
  Alcotest.(check bool) "help set" true (Spec.flag_set m "help")

(* ---- dispatcher exit codes (Spec.main never runs a command body on
   an error path, so these are safe to call in-process) ---- *)

let test_main_exit_codes () =
  Alcotest.(check int) "no args" 2 (Spec.main tool [| "vpack" |]);
  Alcotest.(check int) "help" 0 (Spec.main tool [| "vpack"; "help" |]);
  Alcotest.(check int) "--help" 0 (Spec.main tool [| "vpack"; "--help" |]);
  Alcotest.(check int) "--version" 0 (Spec.main tool [| "vpack"; "--version" |]);
  Alcotest.(check int) "unknown command" 2
    (Spec.main tool [| "vpack"; "frobnicate" |]);
  Alcotest.(check int) "unknown flag" 2
    (Spec.main tool [| "vpack"; "list"; "--frobnicate" |]);
  Alcotest.(check int) "missing required" 2
    (Spec.main tool [| "vpack"; "serve"; "--epochs"; "3" |]);
  Alcotest.(check int) "cmd --help" 0
    (Spec.main tool [| "vpack"; "serve"; "--help" |])

(* ---- generated help ---- *)

let test_every_command_renders_help () =
  List.iter
    (fun c ->
      let h = Spec.cmd_help tool c in
      let prefix = "usage: vpack " in
      Alcotest.(check string)
        "starts with usage"
        prefix
        (String.sub h 0 (String.length prefix));
      Alcotest.(check bool)
        "lists --help" true
        (let re = "--help" in
         let hl = String.length h and rl = String.length re in
         let rec scan i =
           i + rl <= hl && (String.sub h i rl = re || scan (i + 1))
         in
         scan 0))
    tool.Spec.cmds

let golden_tool_help =
  {golden|
usage: vpack COMMAND [OPTION]...
Vacuum Packing: phase-based post-link optimization

commands:
  list         List the Table 1 workload inventory.
  run          Execute a workload on the functional emulator.
  phases       Profile a workload and show its detected phases.
  extract      Run region identification and package extraction.
  aggregate    Aggregate a fleet of per-machine profile streams (emulated, or ingested from vp-profile-wire/1 files) into one consensus profile and feed it through the packaging pipeline.  Stdout is byte-identical for every --shards/--jobs value.
  report       Full evaluation of one or more workloads (coverage, expansion, optional timing), in parallel under --jobs.
  stats        Evaluate one workload with the observability recorder enabled and print the effective configuration plus per-stage span and counter tables.
  timeline     Render a workload's interval timeline: detector state and phase extents of the profiling run, package residency lanes of the rewritten run, and (with --timing) timing-model series.
  serve        Run the online re-optimization loop on one or more workloads: profile, package, hot-patch the running image at a verified safe launch point, keep profiling the rewritten image, and re-package on phase drift — the package cache bounded by --cache-pct.  Stdout is byte-identical for every --jobs value and backend.
  top          Dashboard over a `vpack serve --metrics` snapshot: counter and cache tables, per-histogram bucket sparklines with p50/p90/p99.  Renders one frame by default; --watch re-reads and redraws live.
  trace-check  Validate a trace file against its schema (vp-obs-trace/1, vp-timeline-trace/1, vp-profile-wire/1, vp-retire-trace/1, vp-metrics-snapshot/1 or vp-perfetto-trace/1, detected from the first line); failures name the schema and the offending line.
  verify       Run the pipeline and the package soundness verifier on every emitted package; exit 4 if any check fails.
  chaos        Run the seed x fault-plan chaos matrix: every preset fault plan, asserting the differential oracle on each rewritten image; exit 5 on any cell failure.
  fuzz         Statistical chaos campaign over generated binaries: each case runs the full profile -> package -> verify -> rewrite pipeline under the fault-plan matrix with the differential oracle, plus vp-retire-trace/1 round-trip, ingestion-equivalence and corruption-totality checks; failures are shrunk to minimal repro files.  Reports are byte-identical across --jobs and backends.
  diag         Run the rewritten binary and histogram package boundary crossings.
  asm          Assemble and run a textual-assembly source file.
  disasm       Print a workload's program as textual assembly.
  machine      Print the simulated EPIC machine model (Table 2).

See 'vpack COMMAND --help' for command options.  '--version' prints the version.
|golden}

let golden_serve_help =
  {golden|
usage: vpack serve [OPTION]...
Run the online re-optimization loop on one or more workloads: profile, package, hot-patch the running image at a verified safe launch point, keep profiling the rewritten image, and re-package on phase drift — the package cache bounded by --cache-pct.  Stdout is byte-identical for every --jobs value and backend.

options:
  -w, --workload NAME        Workload as BENCH or BENCH/INPUT (see `vpack list`). (repeatable)
  --epochs N                 Number of re-optimization epochs to run. (default 4)
  --epoch-fuel N             Instructions per epoch (0 = a clean run's length divided by --epochs). (default 0)
  --cache-pct PCT            Package-cache budget as a percentage of the original's static size (the Table 3 expansion budget); least-resident entries are evicted beyond it. (default 30)
  --drift T                  Similarity threshold below which a detected phase counts as drift and is packaged anew. (default 0.5)
  --grace N                  Extra instructions an epoch may run while seeking a quiescent launch point before the swap is deferred. (default 50000)
  --no-oracle                Skip the per-epoch differential oracle (verifier-only gating of activations).
  --trace-dir DIR            Write one vp-timeline-trace/1 file per workload to DIR (session-WORKLOAD.jsonl), every epoch's series and events tagged with its epoch-K run label.
  --interval N               Telemetry sampling interval for --trace-dir, in retired instructions. (default 10000)
  --metrics FILE             Rewrite an OpenMetrics snapshot (schema vp-metrics-snapshot/1) of the stable metric registry to FILE after every epoch — a scrape-able live view, byte-identical for every --jobs value and backend.
  --perfetto FILE            Write a Chrome trace-event / Perfetto JSON timeline (schema vp-perfetto-trace/1) to FILE: pipeline spans on the driver lane, per-epoch session slices on one lane per workload.
  --flight-dir DIR           Flight recorder: on a fallback to the original image, a verifier rejection or an oracle failure, dump the metric registry with its recent mark ring (plus the obs trace, if recording) to DIR.
  -j, --jobs N               Evaluate up to N workloads in parallel on separate domains (0 = the machine's recommended domain count). (default 0)
  --backend BACKEND          Functional emulator backend: reference, decoded or compiled.  All backends produce bit-identical results; the choice only affects simulation speed. (default decoded)
  --help                     Show this help.

exit codes:
  0    every epoch verifier-clean and oracle-clean
  2    command-line error
  3    pipeline error
  4    an epoch fell back to the original image or failed the oracle
|golden}

(* the quoted golden literals above open with a newline for
   readability; drop it before comparing *)
let strip_lead s = String.sub s 1 (String.length s - 1)

let test_golden_tool_help () =
  Alcotest.(check string) "tool help" (strip_lead golden_tool_help)
    (Spec.tool_help tool)

let test_golden_serve_help () =
  Alcotest.(check string) "serve help" (strip_lead golden_serve_help)
    (Spec.cmd_help tool (cmd "serve"))

let () =
  Alcotest.run "cli"
    [
      ( "parse",
        [
          Alcotest.test_case "flag forms" `Quick test_flag_forms;
          Alcotest.test_case "repeatable order" `Quick test_repeatable_order;
          Alcotest.test_case "unknown flag" `Quick test_unknown_flag;
          Alcotest.test_case "missing required" `Quick test_missing_required;
          Alcotest.test_case "bool takes no value" `Quick
            test_bool_takes_no_value;
          Alcotest.test_case "non-repeatable twice" `Quick
            test_non_repeatable_given_twice;
          Alcotest.test_case "check rejects value" `Quick
            test_check_rejects_value;
          Alcotest.test_case "missing value" `Quick test_missing_value;
          Alcotest.test_case "positional required" `Quick
            test_positional_required;
          Alcotest.test_case "positional after --" `Quick
            test_positional_after_terminator;
          Alcotest.test_case "unexpected positional" `Quick
            test_unexpected_positional;
          Alcotest.test_case "--help short-circuits arity" `Quick
            test_help_short_circuits_arity;
        ] );
      ( "dispatch",
        [ Alcotest.test_case "exit codes" `Quick test_main_exit_codes ] );
      ( "help",
        [
          Alcotest.test_case "every command renders" `Quick
            test_every_command_renders_help;
          Alcotest.test_case "golden tool help" `Quick test_golden_tool_help;
          Alcotest.test_case "golden serve help" `Quick test_golden_serve_help;
        ] );
    ]
