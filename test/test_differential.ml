(* Differential tests: the decoded execution core against the boxed
   reference interpreter.  Every registry A-input workload runs through
   both [Emulator.run_reference] (the original instruction-at-a-time
   interpreter, kept as the executable specification) and the decoded
   [Emulator.run]; the two must agree on every outcome field, on the
   hot-spot detector's snapshot stream, and on the whole-run aggregate
   branch profile. *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Detector = Vp_hsd.Detector
module Snapshot = Vp_hsd.Snapshot

let a_workloads = List.filter (fun w -> w.Registry.input = "A") Registry.all

(* Both cores get the same fuel; a truncated run is still a valid
   differential as long as both truncate at the same instruction. *)
let fuel = 2_000_000

(* One instrumented run: detector snapshots plus the classic
   hashtable aggregate, built the same way for both cores. *)
let observe runner image =
  let detector = Detector.create ~config:Vp_hsd.Config.default () in
  let agg : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let on_branch ~pc ~taken =
    Detector.on_branch detector ~pc ~taken;
    let e, t = Option.value ~default:(0, 0) (Hashtbl.find_opt agg pc) in
    Hashtbl.replace agg pc (e + 1, if taken then t + 1 else t)
  in
  let outcome = runner ~fuel ~on_branch image in
  (outcome, Detector.snapshots detector, agg)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let check_outcome name (a : Emulator.outcome) (b : Emulator.outcome) =
  Alcotest.(check int) (name ^ ": instructions") a.Emulator.instructions
    b.Emulator.instructions;
  Alcotest.(check int)
    (name ^ ": package instructions")
    a.Emulator.package_instructions b.Emulator.package_instructions;
  Alcotest.(check int) (name ^ ": cond branches") a.Emulator.cond_branches
    b.Emulator.cond_branches;
  Alcotest.(check bool) (name ^ ": halted") a.Emulator.halted b.Emulator.halted;
  Alcotest.(check int) (name ^ ": checksum") a.Emulator.checksum
    b.Emulator.checksum;
  Alcotest.(check int) (name ^ ": result") a.Emulator.result b.Emulator.result;
  Alcotest.(check int) (name ^ ": final pc") a.Emulator.final_pc
    b.Emulator.final_pc

let test_workload w () =
  let name = Registry.name w in
  let image = Program.layout (w.Registry.program ()) in
  let ref_outcome, ref_snaps, ref_agg =
    observe
      (fun ~fuel ~on_branch image -> Emulator.run_reference ~fuel ~on_branch image)
      image
  in
  let dec_outcome, dec_snaps, dec_agg =
    observe (fun ~fuel ~on_branch image -> Emulator.run ~fuel ~on_branch image)
      image
  in
  check_outcome name ref_outcome dec_outcome;
  Alcotest.(check int)
    (name ^ ": snapshot count")
    (List.length ref_snaps) (List.length dec_snaps);
  Alcotest.(check bool)
    (name ^ ": snapshot streams identical")
    true
    (ref_snaps = dec_snaps);
  Alcotest.(check bool)
    (name ^ ": aggregate profiles identical")
    true
    (sorted_bindings ref_agg = sorted_bindings dec_agg);
  (* The pc-indexed Branch_profile agrees with the classic hashtable
     aggregate on the same run. *)
  let bp = Emulator.aggregate_branch_profile ~fuel image in
  Alcotest.(check bool)
    (name ^ ": Branch_profile matches hashtable")
    true
    (Vp_exec.Branch_profile.bindings bp = sorted_bindings ref_agg);
  Alcotest.(check int)
    (name ^ ": Branch_profile total")
    ref_outcome.Emulator.cond_branches
    (Vp_exec.Branch_profile.total_executed bp)

(* ------------------------------------------------------------------ *)
(* Three-way backend matrix: reference vs decoded vs compiled through
   the uniform [run_backend] entry point.  Each backend runs with the
   full observer set attached — detector + aggregate on the branch
   stream, and an order-sensitive FNV digest of every retirement
   (pc, taken, next_pc, mem_addr) — so the comparison covers outcomes,
   snapshot streams, aggregate profiles and the whole observation
   sequence, not just the final state. *)

let retire_digest_ref () =
  (* FNV-1a folded into OCaml's 63-bit native int (basis truncated). *)
  let h = ref 0x3bf29ce484222325 in
  let mix x = h := (!h lxor x) * 0x100000001b3 in
  ( h,
    fun ~pc ~taken ~next_pc ~mem_addr ->
      mix pc;
      mix (if taken then 1 else 0);
      mix next_pc;
      mix mem_addr )

let observe_backend backend image =
  let detector = Detector.create ~config:Vp_hsd.Config.default () in
  let agg : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let on_branch ~pc ~taken =
    Detector.on_branch detector ~pc ~taken;
    let e, t = Option.value ~default:(0, 0) (Hashtbl.find_opt agg pc) in
    Hashtbl.replace agg pc (e + 1, if taken then t + 1 else t)
  in
  let digest, on_retire = retire_digest_ref () in
  let outcome = Emulator.run_backend ~backend ~fuel ~on_branch ~on_retire image in
  (outcome, Detector.snapshots detector, agg, !digest)

let test_backend_matrix w () =
  let name = Registry.name w in
  let image = Program.layout (w.Registry.program ()) in
  let runs =
    List.map (fun b -> (b, observe_backend b image)) Emulator.all_backends
  in
  let _, (ref_outcome, ref_snaps, ref_agg, ref_digest) = List.hd runs in
  List.iter
    (fun (b, (outcome, snaps, agg, digest)) ->
      let tag = Printf.sprintf "%s [%s]" name (Emulator.backend_name b) in
      check_outcome tag ref_outcome outcome;
      Alcotest.(check bool)
        (tag ^ ": snapshot streams identical")
        true (ref_snaps = snaps);
      Alcotest.(check bool)
        (tag ^ ": aggregate profiles identical")
        true
        (sorted_bindings ref_agg = sorted_bindings agg);
      Alcotest.(check int) (tag ^ ": retire-stream digest") ref_digest digest)
    (List.tl runs)

(* The fleet consensus path — profile, emulated per-machine runs under
   a clean fault plan, sharded aggregation, consensus rewrite — must be
   invariant over the functional backend end to end. *)
let test_fleet_consensus_backends () =
  let w = Option.get (Registry.find ~bench:"134.perl" ~input:"A") in
  let image = Program.layout (w.Registry.program ()) in
  let consensus backend =
    let config =
      Vacuum.Config.with_backend backend
        (Vacuum.Config.with_fault Vp_fault.Plan.clean Vacuum.Config.default)
    in
    let base = Vacuum.Driver.profile ~config image in
    let wire = Vacuum.Fleet.emulate_runs ~config ~seed:7 ~runs:16 base in
    let fleet = Vacuum.Fleet.aggregate ~config ~base wire in
    let r =
      Vacuum.Driver.rewrite_of_profile ~config
        (Vacuum.Fleet.profile_of_fleet ~config ~base fleet)
    in
    ( base.Vacuum.Driver.outcome.Emulator.checksum,
      fleet.Vacuum.Fleet.digest,
      fleet.Vacuum.Fleet.stats.Vp_aggregate.Shard.snapshots,
      List.length r.Vacuum.Driver.packages,
      r.Vacuum.Driver.emitted.Vp_package.Emit.package_instructions )
  in
  let reference = consensus Emulator.Decoded in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "fleet consensus identical on %s backend"
           (Emulator.backend_name b))
        true
        (consensus b = reference))
    [ Emulator.Reference; Emulator.Compiled ]

(* The full driver path (decoded core + pc-indexed profile counters)
   against a reference-interpreter reconstruction of the same
   aggregate, on one real workload end to end. *)
let test_driver_profile_matches_reference () =
  let w = Option.get (Registry.find ~bench:"134.perl" ~input:"A") in
  let image = Program.layout (w.Registry.program ()) in
  let p = Vacuum.Driver.profile image in
  let agg : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let on_branch ~pc ~taken =
    let e, t = Option.value ~default:(0, 0) (Hashtbl.find_opt agg pc) in
    Hashtbl.replace agg pc (e + 1, if taken then t + 1 else t)
  in
  let outcome = Emulator.run_reference ~on_branch image in
  check_outcome "driver profile" outcome p.Vacuum.Driver.outcome;
  Alcotest.(check bool)
    "driver aggregate matches reference interpreter" true
    (sorted_bindings agg = Vp_exec.Branch_profile.bindings p.Vacuum.Driver.aggregate)

(* Telemetry consistency: the per-interval residency series of the
   rewritten run must integrate to exactly the coverage numbers of
   Figure 8 — the interval sampler and the emulator's own
   package-instruction counter are two independent observers of the
   same run. *)
let test_residency_consistency w () =
  let name = Registry.name w in
  let config =
    Vacuum.Config.with_telemetry
      (Vp_telemetry.on ())
      (Vacuum.Config.with_fuel fuel Vacuum.Config.default)
  in
  let image = Program.layout (w.Registry.program ()) in
  let r = Vacuum.Driver.rewrite ~config image in
  let c = Vacuum.Coverage.measure ~config r in
  let res = c.Vacuum.Coverage.residency in
  let sum series_name =
    match Vp_telemetry.Series.find res series_name with
    | Some v -> Array.fold_left ( + ) 0 v
    | None -> Alcotest.failf "%s: missing series %s" name series_name
  in
  Alcotest.(check int)
    (name ^ ": total residency = retired instructions")
    c.Vacuum.Coverage.outcome.Emulator.instructions (sum "run.instructions");
  let pkg_sum =
    List.fold_left
      (fun acc s ->
        if s = "run.instructions" || s = "run.orig.instructions" then acc
        else acc + sum s)
      0
      (Vp_telemetry.Series.names res)
  in
  Alcotest.(check int)
    (name ^ ": package residency = Figure 8 numerator")
    c.Vacuum.Coverage.outcome.Emulator.package_instructions pkg_sum;
  Alcotest.(check int)
    (name ^ ": lanes partition the run")
    c.Vacuum.Coverage.outcome.Emulator.instructions
    (pkg_sum + sum "run.orig.instructions")

let () =
  Alcotest.run "vp_differential"
    [
      ( "decoded vs reference",
        List.map
          (fun w ->
            Alcotest.test_case (Registry.name w) `Quick (test_workload w))
          a_workloads );
      ( "backend matrix",
        List.map
          (fun w ->
            Alcotest.test_case (Registry.name w) `Quick (test_backend_matrix w))
          a_workloads );
      ( "driver",
        [
          Alcotest.test_case "profile matches reference" `Quick
            test_driver_profile_matches_reference;
          Alcotest.test_case "fleet consensus across backends" `Quick
            test_fleet_consensus_backends;
        ] );
      ( "residency vs coverage",
        List.map
          (fun w ->
            Alcotest.test_case (Registry.name w) `Quick
              (test_residency_consistency w))
          a_workloads );
    ]
