(* The metrics plane: log-scale histograms, the registry and its
   volatility classes, snapshot exposition and round-trip, Perfetto
   export, the flight recorder, pool scheduler hooks — and the two
   contracts everything hangs on: stable snapshots are byte-identical
   across schedules and backends, and the disabled registry allocates
   nothing on hot paths. *)

module M = Vp_metrics
module Hist = Vp_metrics.Hist
module Pool = Vp_util.Pool
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Config = Vacuum.Config
module Session = Vacuum.Session
module Progs = Vp_test_support.Progs

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let temp suffix = Filename.temp_file "vp-metrics" suffix

(* ---- Hist ---- *)

let test_hist_bounds () =
  Alcotest.(check int) "bound 0" 0 (Hist.bound 0);
  Alcotest.(check int) "bound 1" 1 (Hist.bound 1);
  Alcotest.(check int) "bound 2" 2 (Hist.bound 2);
  Alcotest.(check int) "bound 3" 4 (Hist.bound 3);
  (* index/bound identity: reading a bucket's upper bound back lands in
     the same bucket, the property Snapshot.read's reconstruction
     relies on *)
  for i = 0 to Hist.buckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "index (bound %d)" i)
      i
      (Hist.index (Hist.bound i))
  done;
  Alcotest.(check int) "<= 0 in bucket 0" 0 (Hist.index (-5));
  Alcotest.(check int) "max_int clamps to last bucket" (Hist.buckets - 1)
    (Hist.index max_int)

let test_hist_exact_count_sum () =
  let h = Hist.create () in
  let values = [ 0; 1; 1; 3; 100; 1024; 1025; 999_999 ] in
  List.iter (Hist.observe h) values;
  Alcotest.(check int) "count" (List.length values) (Hist.count h);
  Alcotest.(check int) "sum" (List.fold_left ( + ) 0 values) (Hist.sum h);
  let by_buckets = ref 0 in
  for i = 0 to Hist.buckets - 1 do
    by_buckets := !by_buckets + Hist.bucket_count h i
  done;
  Alcotest.(check int) "buckets partition the observations"
    (Hist.count h) !by_buckets;
  (* every observation is within its bucket's bounds *)
  List.iter
    (fun v ->
      let i = Hist.index v in
      Alcotest.(check bool)
        (Printf.sprintf "%d <= bound %d" v i)
        true
        (v <= Hist.bound i || i = Hist.buckets - 1))
    values

let test_hist_quantiles () =
  let h = Hist.create () in
  Alcotest.(check int) "empty p50" 0 (Hist.quantile h 0.5);
  for v = 1 to 100 do
    Hist.observe h v
  done;
  (* The quantile is the upper bound of the bucket holding the rank-q
     observation: an upper bound on the true quantile with at most 2x
     relative error. *)
  List.iter
    (fun (q, exact) ->
      let got = Hist.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f=%d is an upper bound on %d" (100. *. q) got exact)
        true (got >= exact);
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f=%d within 2x of %d" (100. *. q) got exact)
        true
        (got <= 2 * exact))
    [ (0.5, 50); (0.9, 90); (0.99, 99) ];
  Alcotest.(check int) "p100 = last bucket bound" (Hist.bound (Hist.index 100))
    (Hist.quantile h 1.0)

let test_hist_merge () =
  let observe_all h vs = List.iter (Hist.observe h) vs in
  let a = [ 1; 5; 5; 700 ] and b = [ 0; 2; 900_000; 3 ] in
  let whole = Hist.create () in
  observe_all whole (a @ b);
  let ha = Hist.create () and hb = Hist.create () in
  observe_all ha a;
  observe_all hb b;
  (* merge in both orders: additive, so both equal the straight run *)
  let ab = Hist.copy ha and ba = Hist.copy hb in
  Hist.merge_into ~dst:ab hb;
  Hist.merge_into ~dst:ba ha;
  List.iter
    (fun (name, m) ->
      Alcotest.(check int) (name ^ " count") (Hist.count whole) (Hist.count m);
      Alcotest.(check int) (name ^ " sum") (Hist.sum whole) (Hist.sum m);
      for i = 0 to Hist.buckets - 1 do
        Alcotest.(check int)
          (Printf.sprintf "%s bucket %d" name i)
          (Hist.bucket_count whole i) (Hist.bucket_count m i)
      done)
    [ ("a+b", ab); ("b+a", ba) ]

(* ---- registry ---- *)

let test_registry_ops () =
  let t = M.create () in
  M.Counter.bump t "c" 2;
  M.Counter.bump t "c" 3;
  Alcotest.(check int) "counter" 5 (M.Counter.value t "c");
  M.Gauge.set t "g" 7;
  M.Gauge.set t "g" 9;
  Alcotest.(check int) "gauge last-writer-wins" 9 (M.Gauge.value t "g");
  M.Histogram.observe t "h" 10;
  M.Histogram.observe t "h" 20;
  match M.Histogram.get t "h" with
  | None -> Alcotest.fail "histogram registered"
  | Some h ->
    Alcotest.(check int) "hist count" 2 (Hist.count h);
    Alcotest.(check int) "hist sum" 30 (Hist.sum h)

let test_disabled_registry_inert () =
  let t = M.disabled in
  Alcotest.(check bool) "disabled" false (M.enabled t);
  M.Counter.bump t "c" 5;
  M.Gauge.set t "g" 5;
  M.Histogram.observe t "h" 5;
  M.Flight.note t ~kind:"k" ~label:"l";
  Alcotest.(check int) "counter silent" 0 (M.Counter.value t "c");
  Alcotest.(check int) "gauge silent" 0 (M.Gauge.value t "g");
  Alcotest.(check bool) "hist silent" true (M.Histogram.get t "h" = None);
  Alcotest.(check bool) "no sched hooks" true (M.Sched.hooks t = None);
  Alcotest.(check int) "no dumps" 0 (M.Flight.dumps t);
  Alcotest.(check string) "empty render" "# vp-metrics-snapshot/1\n# EOF\n"
    (M.Snapshot.render t)

let test_first_registration_wins () =
  let t = M.create () in
  M.Counter.bump t "x" 4;
  (* a later op of a different kind under the same name is dropped, not
     a crash and not a silent re-type *)
  M.Gauge.set t "x" 99;
  M.Histogram.observe t "x" 99;
  Alcotest.(check int) "still the counter" 4 (M.Counter.value t "x");
  Alcotest.(check int) "no gauge grafted" 0 (M.Gauge.value t "x")

(* ---- alloc (the CI gate group: disabled path allocates nothing) ---- *)

let test_disabled_zero_alloc () =
  let t = M.disabled in
  (* warm up any one-time allocation *)
  M.Counter.bump t "hot" 1;
  M.Histogram.observe t "hot" 1;
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    M.Counter.bump t "hot" 1;
    M.Histogram.observe t "hot" i
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f minor words over 200k disabled ops" words)
    true (words < 256.)

(* ---- snapshot ---- *)

let populated () =
  let t = M.create () in
  M.Counter.bump t "session.cache.hits" 12;
  M.Counter.bump t "demote.drop-package" 2;
  M.Histogram.observe t "session.epoch.instructions" 50_000;
  M.Histogram.observe t "session.epoch.instructions" 51_000;
  M.Histogram.observe t "session.epoch.instructions" 1;
  (* volatile metrics must stay out of the stable exposition *)
  M.Gauge.set t "aggregate.snapshots_per_sec" 123_456;
  M.Counter.bump ~volatile:true t "pool.tasks" 9;
  M.Histogram.observe ~volatile:true t "session.epoch.wall_us" 777;
  t

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_render_volatility_classes () =
  let t = populated () in
  let stable = M.Snapshot.render t in
  let full = M.Snapshot.render ~volatile:true t in
  Alcotest.(check bool) "counter rendered" true
    (contains stable "session_cache_hits_total 12");
  Alcotest.(check bool) "hist count rendered" true
    (contains stable "session_epoch_instructions_count 3");
  Alcotest.(check bool) "no volatile marker in stable" false
    (contains stable "# volatile");
  Alcotest.(check bool) "no gauge in stable" false
    (contains stable "aggregate_snapshots_per_sec");
  Alcotest.(check bool) "no wall hist in stable" false
    (contains stable "wall_us");
  Alcotest.(check bool) "volatile marker in full" true
    (contains full "# volatile");
  Alcotest.(check bool) "gauge in full" true
    (contains full "aggregate_snapshots_per_sec 123456");
  Alcotest.(check bool) "volatile counter in full" true
    (contains full "pool_tasks_total 9");
  (* the full render still begins with the stable section *)
  Alcotest.(check bool) "stable is a prefix modulo EOF" true
    (contains full "session_cache_hits_total 12")

let test_snapshot_write_validate_roundtrip () =
  let t = populated () in
  let path = temp ".metrics" in
  M.Snapshot.write t ~path;
  (match M.Snapshot.validate_file ~path with
  | Ok n -> Alcotest.(check bool) "some lines" true (n > 4)
  | Error e -> Alcotest.fail ("valid snapshot rejected: " ^ e));
  (match M.Snapshot.read ~path with
  | Error e -> Alcotest.fail ("roundtrip failed: " ^ e)
  | Ok samples ->
    (match List.assoc_opt "session_cache_hits" samples with
    | Some (M.Snapshot.Counter v) -> Alcotest.(check int) "counter back" 12 v
    | _ -> Alcotest.fail "counter lost");
    (match List.assoc_opt "session_epoch_instructions" samples with
    | Some (M.Snapshot.Hist h) ->
      Alcotest.(check int) "hist count back" 3 (Hist.count h);
      Alcotest.(check int) "hist sum back" 101_001 (Hist.sum h)
    | _ -> Alcotest.fail "histogram lost");
    Alcotest.(check bool) "volatile excluded from default write" true
      (List.assoc_opt "aggregate_snapshots_per_sec" samples = None));
  Sys.remove path

let test_validator_rejections () =
  let check_error name content expect =
    let path = temp ".metrics" in
    write_file path content;
    (match M.Snapshot.validate_file ~path with
    | Ok _ -> Alcotest.fail (name ^ ": accepted")
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" name e expect)
        true (contains e expect));
    Sys.remove path
  in
  check_error "wrong meta" "# nope/1\n# EOF\n" "line 1";
  check_error "missing EOF" "# vp-metrics-snapshot/1\nfoo_total 1\n" "EOF";
  check_error "garbage line"
    "# vp-metrics-snapshot/1\nnot a metric line at all!\n# EOF\n" "line 2";
  check_error "non-numeric value"
    "# vp-metrics-snapshot/1\nfoo_total bar\n# EOF\n" "line 2"

(* ---- determinism: stable snapshot across schedules and backends ---- *)

let test_stable_snapshot_jobs_invariant () =
  let render_under jobs =
    let t = M.create () in
    ignore
      (Pool.map ~jobs
         ?hooks:(M.Sched.hooks t)
         (fun i ->
           M.Counter.bump t "work.items" 1;
           M.Histogram.observe t "work.size" (100 * (i + 1)))
         [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
    M.Snapshot.render t
  in
  let seq = render_under 1 in
  Alcotest.(check string) "jobs 4 = jobs 1" seq (render_under 4);
  Alcotest.(check bool) "work counted" true (contains seq "work_items_total 8")

let test_stable_snapshot_backend_invariant () =
  (* The serve-shaped path: a session instruments the registry while it
     runs; the stable exposition must not depend on the execution
     backend. *)
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:2) in
  let render_under backend =
    let t = M.create () in
    let config =
      Config.default
      |> Config.with_detector Vp_hsd.Config.tiny
      |> Config.with_backend backend
      |> Config.with_metrics t
      |> Config.map_session (fun s -> { s with Config.cache_pct = 300.0 })
    in
    ignore (Session.run ~epochs:4 (Session.create ~config img));
    M.Snapshot.render t
  in
  let d = render_under Emulator.Decoded in
  Alcotest.(check bool) "epochs observed" true
    (contains d "session_epoch_instructions_count 4");
  Alcotest.(check string) "reference = decoded" d
    (render_under Emulator.Reference);
  Alcotest.(check string) "compiled = decoded" d (render_under Emulator.Compiled)

(* ---- pool hooks ---- *)

let test_pool_hooks_totals () =
  let t = M.create () in
  let n = 32 in
  ignore
    (Pool.map ~jobs:3
       ?hooks:(M.Sched.hooks t)
       (fun i -> i * i)
       (List.init n Fun.id));
  Alcotest.(check int) "every task counted" n (M.Counter.value t "pool.tasks");
  let per_domain = ref 0 in
  for d = 0 to 7 do
    per_domain :=
      !per_domain + M.Counter.value t (Printf.sprintf "pool.tasks.d%d" d)
  done;
  Alcotest.(check int) "per-domain counts partition the total" n !per_domain;
  match M.Histogram.get t "pool.queue_depth" with
  | None -> Alcotest.fail "queue depth recorded"
  | Some h -> Alcotest.(check int) "one depth sample per submit" n (Hist.count h)

(* ---- perfetto ---- *)

let test_perfetto_export () =
  let obs = Vp_obs.create () in
  Vp_obs.Span.note obs "profile:w" ~wall_s:0.25 ~work:1000;
  Vp_obs.Span.note obs "rewrite:w" ~wall_s:0.5 ~work:0;
  let events =
    M.Perfetto.of_spans ~pid:1 ~cat:"driver" (Vp_obs.Sink.spans obs)
    @ [
        {
          M.Perfetto.name = "epoch-0";
          cat = "session";
          pid = 3;
          tid = 0;
          ts_us = 10.0;
          dur_us = 5.0;
        };
      ]
  in
  let path = temp ".json" in
  M.Perfetto.write ~processes:[ (1, "driver"); (3, "session") ] ~path events;
  (match M.Perfetto.validate_file ~path with
  | Ok n ->
    (* 3 complete events + 2 process_name metadata records *)
    Alcotest.(check int) "event count" 5 n
  | Error e -> Alcotest.fail ("perfetto export rejected: " ^ e));
  let s = read_file path in
  Alcotest.(check bool) "schema line" true (contains s "vp-perfetto-trace/1");
  Alcotest.(check bool) "process metadata" true (contains s "process_name");
  Alcotest.(check bool) "span event" true (contains s "profile:w");
  Sys.remove path

(* ---- flight recorder ---- *)

let test_flight_dump () =
  let dir = Filename.temp_file "vp-flight" "" in
  Sys.remove dir;
  let t = M.create ~flight_capacity:4 ~flight_dir:dir () in
  M.Counter.bump t "session.drifts" 3;
  M.Gauge.set t "aggregate.snapshots_per_sec" 42;
  (* overflow the ring: only the 4 most recent marks survive *)
  for i = 1 to 6 do
    M.Flight.note t ~kind:"drift" ~label:(string_of_int i)
  done;
  let obs = Vp_obs.create () in
  Vp_obs.Span.note obs "profile:w" ~wall_s:0.1 ~work:10;
  M.Flight.dump t ~obs ~reason:"oracle-failure" ~label:"epoch-2" ();
  Alcotest.(check int) "one dump" 1 (M.Flight.dumps t);
  let metrics_file = Filename.concat dir "flight-epoch-2-0.metrics" in
  let obs_file = Filename.concat dir "flight-epoch-2-0-obs.jsonl" in
  Alcotest.(check bool) "metrics file written" true (Sys.file_exists metrics_file);
  Alcotest.(check bool) "obs file written" true (Sys.file_exists obs_file);
  (* the dump is itself a valid snapshot, and the obs file a valid trace *)
  (match M.Snapshot.validate_file ~path:metrics_file with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("flight dump not a valid snapshot: " ^ e));
  (match Vp_obs.Sink.validate_file ~path:obs_file with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("flight obs not a valid trace: " ^ e));
  let s = read_file metrics_file in
  Alcotest.(check bool) "reason recorded" true
    (contains s "# reason oracle-failure");
  Alcotest.(check bool) "ring bounded: oldest mark evicted" false
    (contains s "# mark 0 drift 1");
  Alcotest.(check bool) "newest mark kept" true (contains s "drift 6");
  Alcotest.(check bool) "volatile section included" true (contains s "# volatile");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_flight_noop_without_dir () =
  let t = M.create () in
  M.Flight.note t ~kind:"demote" ~label:"x";
  M.Flight.dump t ~reason:"verifier-rejection" ~label:"driver" ();
  Alcotest.(check int) "no dump without flight_dir" 0 (M.Flight.dumps t)

let () =
  Alcotest.run "vp_metrics"
    [
      ( "hist",
        [
          Alcotest.test_case "bounds and index" `Quick test_hist_bounds;
          Alcotest.test_case "exact count and sum" `Quick
            test_hist_exact_count_sum;
          Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "merge additive" `Quick test_hist_merge;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter gauge histogram" `Quick test_registry_ops;
          Alcotest.test_case "disabled registry inert" `Quick
            test_disabled_registry_inert;
          Alcotest.test_case "first registration wins" `Quick
            test_first_registration_wins;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_disabled_zero_alloc;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "volatility classes" `Quick
            test_render_volatility_classes;
          Alcotest.test_case "write validate read roundtrip" `Quick
            test_snapshot_write_validate_roundtrip;
          Alcotest.test_case "validator names the line" `Quick
            test_validator_rejections;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "stable snapshot jobs-invariant" `Quick
            test_stable_snapshot_jobs_invariant;
          Alcotest.test_case "stable snapshot backend-invariant" `Slow
            test_stable_snapshot_backend_invariant;
        ] );
      ( "sched",
        [ Alcotest.test_case "pool hook totals" `Quick test_pool_hooks_totals ] );
      ( "perfetto",
        [ Alcotest.test_case "export and validate" `Quick test_perfetto_export ] );
      ( "flight",
        [
          Alcotest.test_case "dump on failure" `Quick test_flight_dump;
          Alcotest.test_case "no-op without dir" `Quick
            test_flight_noop_without_dir;
        ] );
    ]
