(* The generative corpus: phase-structured random binaries, the
   vp-retire-trace/1 external trace format (round-trip, totality under
   corruption), the emulator-free ingestion path, and the shrinking
   chaos campaign built on all three. *)

module R = Vp_util.Rng
module Gen = Vp_gen.Gen
module Trace = Vp_gen.Trace
module Campaign = Vp_gen.Campaign
module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Emulator = Vp_exec.Emulator
module Detector = Vp_hsd.Detector
module Config = Vacuum.Config
module Driver = Vacuum.Driver
module Pool = Vp_util.Pool

let listing img = Format.asprintf "%a" Image.pp_listing img
let build ~seed params = Program.layout (Gen.program ~seed params)

(* Fuel ceiling for direct runs of generated binaries: default_bounds
   keeps programs well under a million instructions. *)
let gen_fuel = 4_000_000

(* ---- generator ---- *)

let test_deterministic () =
  List.iter
    (fun seed ->
      let a = build ~seed Gen.default and b = build ~seed Gen.default in
      Alcotest.(check string)
        (Printf.sprintf "seed %d listing identical" seed)
        (listing a) (listing b))
    [ 1; 7; 42; 123456789 ]

let test_seeds_diverge () =
  let distinct =
    List.sort_uniq compare
      (List.map (fun seed -> listing (build ~seed Gen.default)) [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check bool) "5 seeds give >= 4 distinct programs" true
    (List.length distinct >= 4)

let test_halts () =
  (* Acyclic calls + counted loops: every generated program must halt,
     at any sampled parameter point. *)
  let rng = R.create ~seed:99 in
  for i = 0 to 11 do
    let params = Gen.sample Gen.default_bounds (R.stream rng i) in
    let seed = 1000 + i in
    let out = Emulator.run_backend ~fuel:gen_fuel (build ~seed params) in
    Alcotest.(check bool)
      (Format.asprintf "case %d halts (%a)" i Gen.pp params)
      true out.Emulator.halted
  done

let test_clamp_hostile_params () =
  let hostile =
    {
      Gen.phases = -3;
      hot_funcs = 9999;
      call_depth = -1;
      loop_nesting = 100;
      body_blocks = 0;
      share_pct = 400;
      phase_iters = -7;
      rounds = 1_000_000;
      globals = 3;
    }
  in
  let c = Gen.clamp hostile in
  Alcotest.(check bool) "clamp idempotent" true (Gen.clamp c = c);
  let out = Emulator.run_backend ~fuel:gen_fuel (build ~seed:5 hostile) in
  Alcotest.(check bool) "hostile params still build and halt" true
    out.Emulator.halted

let test_fields_roundtrip () =
  let p = Gen.clamp { Gen.default with Gen.phases = 5; share_pct = 50 } in
  (match Gen.of_fields (Gen.fields p) with
  | Ok q -> Alcotest.(check bool) "of_fields . fields = id" true (p = q)
  | Error e -> Alcotest.fail e);
  (match Gen.of_fields [ ("no_such_knob", 1) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted");
  match Gen.of_fields [ ("phases", 2) ] with
  | Ok q ->
    Alcotest.(check int) "named key taken" 2 q.Gen.phases;
    Alcotest.(check int) "missing keys default" Gen.default.Gen.rounds
      q.Gen.rounds
  | Error e -> Alcotest.fail e

let test_sample_deterministic () =
  let draw () = Gen.sample Gen.default_bounds (R.stream (R.create ~seed:4) 9) in
  Alcotest.(check bool) "same stream, same point" true (draw () = draw ())

let test_shrinks_strictly_smaller () =
  let rng = R.create ~seed:17 in
  for i = 0 to 9 do
    let p = Gen.sample Gen.default_bounds (R.stream rng i) in
    List.iter
      (fun q ->
        Alcotest.(check bool)
          (Format.asprintf "shrink of (%a) is clamped" Gen.pp p)
          true
          (Gen.clamp q = q);
        Alcotest.(check bool)
          (Format.asprintf "weight strictly drops: (%a) -> (%a)" Gen.pp p
             Gen.pp q)
          true
          (Gen.weight q < Gen.weight p))
      (Gen.shrinks p)
  done;
  Alcotest.(check int) "floor point has no shrinks" 0
    (List.length
       (Gen.shrinks
          (Gen.clamp
             {
               Gen.phases = 1;
               hot_funcs = 1;
               call_depth = 1;
               loop_nesting = 0;
               body_blocks = 1;
               share_pct = 0;
               phase_iters = 1;
               rounds = 1;
               globals = 16;
             })))

(* ---- trace format ---- *)

let small_trace () =
  let img = build ~seed:11 { Gen.default with Gen.phases = 2; phase_iters = 6 } in
  let t, out = Trace.record ~fuel:gen_fuel img in
  Alcotest.(check bool) "recording run halts" true out.Emulator.halted;
  (t, out)

let test_trace_roundtrip () =
  let t, out = small_trace () in
  Alcotest.(check int) "events = retired cond branches"
    out.Emulator.cond_branches (Trace.length t);
  Alcotest.(check int) "instructions carried" out.Emulator.instructions
    t.Trace.instructions;
  let enc = Trace.encode t in
  (match Trace.decode enc with
  | Ok t' ->
    Alcotest.(check bool) "decode . encode = id" true (Trace.equal t t')
  | Error e -> Alcotest.fail ("fresh encoding rejected: " ^ e));
  match Trace.validate enc with
  | Ok n -> Alcotest.(check int) "validate counts events" (Trace.length t) n
  | Error e -> Alcotest.fail e

let test_trace_prefix () =
  let t, _ = small_trace () in
  let n = Trace.length t / 3 in
  let p = Trace.prefix t n in
  Alcotest.(check int) "prefix length" n (Trace.length p);
  Alcotest.(check bool) "prefix events are a prefix" true
    (Array.sub (Trace.events t) 0 n = Trace.events p);
  Alcotest.(check bool) "prefix instructions scaled down" true
    (p.Trace.instructions <= t.Trace.instructions);
  Alcotest.(check bool) "over-long prefix clamps" true
    (Trace.equal t (Trace.prefix t (Trace.length t + 999)))

let test_trace_file_roundtrip () =
  let t, _ = small_trace () in
  let path = Filename.temp_file "vp-gen-test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_file ~path t;
      (match Trace.read_file ~path with
      | Ok t' -> Alcotest.(check bool) "file round-trip" true (Trace.equal t t')
      | Error e -> Alcotest.fail e);
      match Trace.validate_file ~path with
      | Ok n -> Alcotest.(check int) "validate_file" (Trace.length t) n
      | Error e -> Alcotest.fail e)

let test_trace_every_truncation_rejected () =
  let t, _ = small_trace () in
  let enc = Trace.encode t in
  for cut = 0 to String.length enc - 1 do
    match Trace.decode (String.sub enc 0 cut) with
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncation to %d bytes accepted" cut)
    | Error _ -> ()
    | exception exn ->
      Alcotest.fail
        (Printf.sprintf "truncation to %d bytes raised %s" cut
           (Printexc.to_string exn))
  done

let test_trace_bit_flips_rejected () =
  (* The body is FNV-checksummed and the header/trailer structurally
     checked: no single bit flip may be silently accepted, and none
     may raise. *)
  let t, _ = small_trace () in
  let enc = Trace.encode t in
  let rng = R.create ~seed:23 in
  for _ = 1 to 200 do
    let at = R.int rng (String.length enc) in
    let bit = R.int rng 8 in
    let b = Bytes.of_string enc in
    Bytes.set b at (Char.chr (Char.code enc.[at] lxor (1 lsl bit)));
    match Trace.decode (Bytes.to_string b) with
    | Ok _ ->
      Alcotest.fail (Printf.sprintf "bit %d of byte %d flipped: accepted" bit at)
    | Error _ -> ()
    | exception exn ->
      Alcotest.fail
        (Printf.sprintf "bit %d of byte %d flipped: raised %s" bit at
           (Printexc.to_string exn))
  done

let test_trace_junk_rejected () =
  List.iter
    (fun (what, s) ->
      match Trace.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (what ^ " accepted")
      | exception exn ->
        Alcotest.fail (what ^ " raised " ^ Printexc.to_string exn))
    [
      ("empty string", "");
      ("junk", "definitely not a trace");
      ("bare header", Trace.schema ^ "\n");
      ("wrong schema", "vp-retire-trace/9\nM");
      (* A 9-byte varint whose top byte smuggles bits past the native
         int's 62-bit range: must be rejected, not wrapped negative. *)
      ( "overlong varint",
        Trace.schema ^ "\nM" ^ String.make 8 '\x80' ^ "\x40" );
    ]

let test_of_events_negative_pc () =
  Alcotest.check_raises "negative pc refused"
    (Invalid_argument "Trace.of_events: negative pc")
    (fun () -> ignore (Trace.of_events [| (3, true); (-4, false) |]))

(* ---- ingestion ---- *)

let ingest_config out =
  Config.with_fuel
    ((2 * out.Emulator.instructions) + 10_000)
    Campaign.default_config

let test_ingestion_matches_live_profile () =
  let img = build ~seed:77 Gen.default in
  let t, out = Trace.record ~fuel:gen_fuel img in
  let config = ingest_config out in
  let live = Driver.profile ~config img in
  Alcotest.(check bool) "live profile detects something" true
    (live.Driver.snapshots <> []);
  let ingested =
    Driver.profile_of_events ~config ~instructions:t.Trace.instructions img
      (Trace.events t)
  in
  Alcotest.(check bool) "identical snapshot streams" true
    (ingested.Driver.snapshots = live.Driver.snapshots)

let test_ingested_rewrite_equivalent () =
  let img = build ~seed:77 Gen.default in
  let t, clean = Trace.record ~fuel:gen_fuel img in
  let config = ingest_config clean in
  let ingested =
    Driver.profile_of_events ~config ~instructions:t.Trace.instructions img
      (Trace.events t)
  in
  let rw = Driver.rewrite_of_profile ~config ingested in
  Alcotest.(check bool) "rewrite verifies" true
    (Vp_package.Verify.ok rw.Driver.verification);
  let out =
    Emulator.run_backend ~fuel:(Config.fuel config)
      (Driver.rewritten_image rw)
  in
  Alcotest.(check bool) "rewritten halts" true out.Emulator.halted;
  Alcotest.(check int) "result preserved" clean.Emulator.result
    out.Emulator.result;
  Alcotest.(check int) "checksum preserved" clean.Emulator.checksum
    out.Emulator.checksum

let test_ingestion_tolerates_alien_pcs () =
  let img = build ~seed:3 Gen.default in
  let t, _ = Trace.record ~fuel:gen_fuel img in
  let alien = Array.map (fun (pc, tk) -> (pc + Image.size img, tk)) (Trace.events t) in
  let p = Driver.profile_of_events ~config:Campaign.default_config img alien in
  Alcotest.(check bool) "alien events warned about" true
    (List.exists
       (fun (e : Vacuum.Error.t) -> e.Vacuum.Error.stage = "ingest")
       p.Driver.warnings)

let test_detector_replay () =
  let img = build ~seed:8 Gen.default in
  let t, _ = Trace.record ~fuel:gen_fuel img in
  let config = Campaign.campaign_detector in
  let a = Detector.create ~config () in
  Array.iter (fun (pc, taken) -> Detector.on_branch a ~pc ~taken) (Trace.events t);
  let b = Detector.create ~config () in
  Detector.replay b (Trace.events t);
  Alcotest.(check bool) "replay = on_branch loop" true
    (Detector.snapshots a = Detector.snapshots b)

(* ---- campaign ---- *)

let test_campaign_smoke () =
  let r = Campaign.run ~count:4 () in
  Alcotest.(check bool) "all 4 generated cases pass" true (Campaign.ok r);
  Alcotest.(check int) "all cases reported" 4 (List.length r.Campaign.outcomes);
  List.iteri
    (fun i o ->
      Alcotest.(check int) "index order" i o.Campaign.index;
      Alcotest.(check bool) "chaos matrix ran" true (o.Campaign.cells > 0);
      Alcotest.(check bool) "trace recorded" true (o.Campaign.trace_events > 0))
    r.Campaign.outcomes;
  Alcotest.(check bool) "corpus detector fires on generated binaries" true
    (List.exists (fun o -> o.Campaign.snapshots > 0) r.Campaign.outcomes)

let test_campaign_render_deterministic () =
  let go ?(config = Campaign.default_config) jobs =
    Campaign.render (Campaign.run ~config ~jobs ~count:6 ())
  in
  let base = go 1 in
  Alcotest.(check string) "jobs 1 = jobs 2" base (go 2);
  Alcotest.(check string) "jobs 1 = jobs 4" base (go 4);
  Alcotest.(check string) "compiled backend = decoded" base
    (go ~config:(Config.with_backend Emulator.Compiled Campaign.default_config) 2)

let test_spec_of_index_schedule_free () =
  let a = Campaign.spec_of_index ~root_seed:0 5 in
  Alcotest.(check bool) "same index, same spec" true
    (a = Campaign.spec_of_index ~root_seed:0 5);
  Alcotest.(check bool) "different index, different spec" true
    (a <> Campaign.spec_of_index ~root_seed:0 6);
  Alcotest.(check bool) "different root, different spec" true
    (a <> Campaign.spec_of_index ~root_seed:1 5)

let test_campaign_shrink_descends () =
  (* Starve the fuel so every case fails at the generate stage: the
     shrinker must walk the lattice down to a smaller point while the
     failure keeps reproducing, deterministically. *)
  let config = Config.with_fuel 120 Campaign.default_config in
  let spec = Campaign.spec_of_index ~root_seed:0 0 in
  let o = Campaign.run_case ~config ~index:0 spec in
  (match o.Campaign.failure with
  | Some f -> Alcotest.(check string) "starved fuel fails generate" "generate" f.Campaign.stage
  | None -> Alcotest.fail "starved case passed");
  let f = Option.get o.Campaign.failure in
  let repro, attempts = Campaign.shrink ~config spec f in
  Alcotest.(check string) "stage preserved" "generate" repro.Campaign.stage;
  Alcotest.(check bool) "attempts bounded" true (attempts <= 48);
  Alcotest.(check bool) "weight shrank" true
    (Gen.weight repro.Campaign.spec.Campaign.params
    < Gen.weight spec.Campaign.params);
  let repro2, attempts2 = Campaign.shrink ~config spec f in
  Alcotest.(check bool) "shrinking is deterministic" true
    (repro = repro2 && attempts = attempts2)

let test_campaign_never_crashes () =
  (* run_case must catch everything: even a config whose fuel starves
     the pipeline yields a failure outcome, not an exception. *)
  let config = Config.with_fuel 1 Campaign.default_config in
  for i = 0 to 3 do
    let o =
      Campaign.run_case ~config ~index:i (Campaign.spec_of_index ~root_seed:7 i)
    in
    Alcotest.(check bool)
      (Printf.sprintf "case %d fails cleanly" i)
      true (o.Campaign.failure <> None)
  done

let test_repro_roundtrip () =
  let repro =
    {
      Campaign.spec =
        { Campaign.seed = 424242; params = Gen.default; trace_frac_pct = 25 };
      stage = "trace-ingest";
      detail = "multi\nline detail";
    }
  in
  match Campaign.repro_of_string (Campaign.repro_to_string repro) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "seed" 424242 r.Campaign.spec.Campaign.seed;
    Alcotest.(check int) "trace frac" 25 r.Campaign.spec.Campaign.trace_frac_pct;
    Alcotest.(check string) "stage" "trace-ingest" r.Campaign.stage;
    Alcotest.(check bool) "params" true (r.Campaign.spec.Campaign.params = Gen.default);
    Alcotest.(check string) "detail flattened to one line" "multi line detail"
      r.Campaign.detail

let test_repro_parser_total () =
  List.iter
    (fun (what, s) ->
      match Campaign.repro_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (what ^ " accepted")
      | exception exn ->
        Alcotest.fail (what ^ " raised " ^ Printexc.to_string exn))
    [
      ("empty", "");
      ("junk", "hello\nworld");
      ("missing seed", "# vp-fuzz-repro/1\nstage chaos\n");
      ("missing stage", "# vp-fuzz-repro/1\nseed 3\n");
      ("bad int", "# vp-fuzz-repro/1\nseed zebra\nstage chaos\n");
      ("unknown key", "# vp-fuzz-repro/1\nseed 3\nstage chaos\nwhatever 1\n");
    ]

let test_save_and_replay () =
  let dir = Filename.temp_file "vp-gen-corpus" "" in
  Sys.remove dir;
  let repro =
    {
      Campaign.spec = Campaign.spec_of_index ~root_seed:0 1;
      stage = "chaos";
      detail = "synthetic";
    }
  in
  let report =
    {
      Campaign.count = 1;
      chaos_seeds = 1;
      root_seed = 0;
      outcomes = [];
      repros = [ repro ];
      shrink_attempts = 0;
    }
  in
  let paths = Campaign.save_repros ~dir report in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove paths;
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      match paths with
      | [ path ] -> (
        match Campaign.load_repro_file ~path with
        | Error e -> Alcotest.fail e
        | Ok loaded -> (
          Alcotest.(check bool) "spec survives the file" true
            (loaded.Campaign.spec = repro.Campaign.spec);
          (* The spec itself is healthy, so replay reports the
             regression as fixed. *)
          match Campaign.replay loaded with
          | Ok _ -> ()
          | Error f ->
            Alcotest.fail
              (Printf.sprintf "replay failed at %s: %s" f.Campaign.stage
                 f.Campaign.detail)))
      | ps -> Alcotest.fail (Printf.sprintf "expected 1 path, got %d" (List.length ps)))

(* ---- committed corpus ---- *)

let corpus_files () =
  if Sys.file_exists "corpus" && Sys.is_directory "corpus" then
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
    |> List.map (Filename.concat "corpus")
  else []

let test_corpus_replays_clean () =
  (* Every committed repro captures a once-failing case; with the bugs
     fixed, replaying each one must pass. *)
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      match Campaign.load_repro_file ~path with
      | Error e -> Alcotest.fail (path ^ ": " ^ e)
      | Ok r -> (
        match Campaign.replay r with
        | Ok _ -> ()
        | Error f ->
          Alcotest.fail
            (Printf.sprintf "%s: regression is back at stage %s: %s" path
               f.Campaign.stage f.Campaign.detail)))
    files

let () =
  Alcotest.run "vp_gen"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_deterministic;
          Alcotest.test_case "seeds diverge" `Quick test_seeds_diverge;
          Alcotest.test_case "every sampled program halts" `Slow test_halts;
          Alcotest.test_case "hostile params clamp" `Quick
            test_clamp_hostile_params;
          Alcotest.test_case "fields round-trip" `Quick test_fields_roundtrip;
          Alcotest.test_case "sample deterministic" `Quick
            test_sample_deterministic;
          Alcotest.test_case "shrinks strictly smaller" `Quick
            test_shrinks_strictly_smaller;
        ] );
      ( "trace",
        [
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_trace_roundtrip;
          Alcotest.test_case "prefix" `Quick test_trace_prefix;
          Alcotest.test_case "file round-trip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "every truncation rejected" `Slow
            test_trace_every_truncation_rejected;
          Alcotest.test_case "bit flips rejected" `Slow
            test_trace_bit_flips_rejected;
          Alcotest.test_case "junk rejected" `Quick test_trace_junk_rejected;
          Alcotest.test_case "negative pc refused" `Quick
            test_of_events_negative_pc;
        ] );
      ( "ingestion",
        [
          Alcotest.test_case "matches the live profile" `Slow
            test_ingestion_matches_live_profile;
          Alcotest.test_case "ingested rewrite equivalent" `Slow
            test_ingested_rewrite_equivalent;
          Alcotest.test_case "alien pcs tolerated" `Quick
            test_ingestion_tolerates_alien_pcs;
          Alcotest.test_case "Detector.replay = loop" `Quick test_detector_replay;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "smoke" `Slow test_campaign_smoke;
          Alcotest.test_case "render byte-identical across jobs and backends"
            `Slow test_campaign_render_deterministic;
          Alcotest.test_case "spec derivation schedule-free" `Quick
            test_spec_of_index_schedule_free;
          Alcotest.test_case "shrink descends deterministically" `Slow
            test_campaign_shrink_descends;
          Alcotest.test_case "never crashes" `Quick test_campaign_never_crashes;
          Alcotest.test_case "repro round-trip" `Quick test_repro_roundtrip;
          Alcotest.test_case "repro parser total" `Quick test_repro_parser_total;
          Alcotest.test_case "save + replay" `Slow test_save_and_replay;
        ] );
      ( "corpus",
        [ Alcotest.test_case "committed repros replay clean" `Slow
            test_corpus_replays_clean ] );
    ]
