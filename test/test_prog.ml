(* Tests for vp_prog: block/function invariants, layout and image
   operations, and builder-generated structure. *)

module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Reg = Vp_isa.Reg
module Block = Vp_prog.Block
module Func = Vp_prog.Func
module Program = Vp_prog.Program
module Image = Vp_prog.Image
module B = Vp_prog.Builder
module Progs = Vp_test_support.Progs

let t0 = Reg.of_int 8
let t1 = Reg.of_int 9

let test_block_terminator_invariant () =
  let ok =
    Block.v "b"
      [ Instr.Li { dst = t0; imm = 1 }; Instr.Jmp { target = Instr.Label "x" } ]
  in
  Alcotest.(check int) "size" 2 (Block.size ok);
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Block.v "bad"
            [ Instr.Jmp { target = Instr.Label "x" }; Instr.Li { dst = t0; imm = 1 } ]);
       false
     with Invalid_argument _ -> true)

let test_block_falls_through () =
  let plain = Block.v "p" [ Instr.Li { dst = t0; imm = 1 } ] in
  let jmp = Block.v "j" [ Instr.Jmp { target = Instr.Label "x" } ] in
  let br =
    Block.v "b" [ Instr.Br { cond = Op.Eq; src1 = t0; src2 = t1; target = Instr.Label "x" } ]
  in
  let call = Block.v "c" [ Instr.Call { target = Instr.Label "x" } ] in
  let ret = Block.v "r" [ Instr.Ret ] in
  Alcotest.(check bool) "plain" true (Block.falls_through plain);
  Alcotest.(check bool) "jmp" false (Block.falls_through jmp);
  Alcotest.(check bool) "br" true (Block.falls_through br);
  Alcotest.(check bool) "call" true (Block.falls_through call);
  Alcotest.(check bool) "ret" false (Block.falls_through ret)

let test_func_invariants () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Func.v "f" []);
       false
     with Invalid_argument _ -> true);
  let blk l = Block.v l [ Instr.Nop ] in
  Alcotest.(check bool) "dup labels rejected" true
    (try
       ignore (Func.v "f" [ blk "a"; blk "a" ]);
       false
     with Invalid_argument _ -> true)

let test_program_invariants () =
  let blk l = Block.v l [ Instr.Ret ] in
  let f1 = Func.v "f" [ blk "f$e" ] in
  Alcotest.(check bool) "missing entry" true
    (try
       ignore (Program.v ~entry:"nope" [ f1 ]);
       false
     with Vp_util.Error.Error _ -> true);
  Alcotest.(check bool) "dup funcs" true
    (try
       ignore (Program.v ~entry:"f" [ f1; Func.v "f" [ blk "g$e" ] ]);
       false
     with Vp_util.Error.Error _ -> true)

let test_layout_addresses_and_resolution () =
  let callee = Func.v "callee" [ Block.v "callee$b" [ Instr.Nop; Instr.Ret ] ] in
  let main =
    Func.v "main"
      [
        Block.v "main$b" [ Instr.Call { target = Instr.Label "callee" } ];
        Block.v "main$c" [ Instr.Halt ];
      ]
  in
  let p = Program.v ~entry:"main" [ callee; main ] in
  let img = Program.layout p in
  Alcotest.(check int) "image size" 4 (Image.size img);
  (match Image.find_sym img "main" with
  | Some s -> Alcotest.(check int) "main at 2" 2 s.Image.start
  | None -> Alcotest.fail "main symbol missing");
  (match Image.fetch img 2 with
  | Instr.Call { target = Instr.Addr 0 } -> ()
  | i -> Alcotest.failf "call not resolved: %s" (Instr.to_string i));
  Alcotest.(check int) "entry" 2 img.Image.entry;
  Alcotest.(check int) "orig_limit" 4 img.Image.orig_limit;
  match Image.validate img with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_layout_undefined_label () =
  let f = Func.v "f" [ Block.v "f$b" [ Instr.Jmp { target = Instr.Label "ghost" } ] ] in
  let p = Program.v ~entry:"f" [ f ] in
  Alcotest.(check bool) "undefined label" true
    (try
       ignore (Program.layout p);
       false
     with Vp_util.Error.Error { stage = "program"; label = Some "ghost"; _ } -> true)

let test_image_append_and_patch () =
  let img = Program.layout (Progs.sum_to_n 4) in
  let before = Image.size img in
  let img2, base =
    Image.append img ~name:"pkg$0" [| Instr.Nop; Instr.Jmp { target = Instr.Addr 0 } |]
  in
  Alcotest.(check int) "base at old end" before base;
  Alcotest.(check int) "grown" (before + 2) (Image.size img2);
  Alcotest.(check bool) "package range" true (Image.in_package img2 base);
  Alcotest.(check bool) "orig range" false (Image.in_package img2 0);
  (match Image.sym_at img2 base with
  | Some s -> Alcotest.(check string) "sym name" "pkg$0" s.Image.name
  | None -> Alcotest.fail "no symbol for appended code");
  let img3 = Image.patch img2 [ (0, Instr.Jmp { target = Instr.Addr base }) ] in
  (match Image.fetch img3 0 with
  | Instr.Jmp { target = Instr.Addr a } -> Alcotest.(check int) "patched" base a
  | _ -> Alcotest.fail "patch failed");
  (* Patching is functional: the original image is untouched. *)
  match Image.fetch img2 0 with
  | Instr.Jmp _ -> Alcotest.fail "patch leaked"
  | _ -> ()

let test_image_append_rejects_labels () =
  let img = Program.layout (Progs.sum_to_n 4) in
  Alcotest.(check bool) "label rejected" true
    (try
       ignore (Image.append img ~name:"p" [| Instr.Jmp { target = Instr.Label "x" } |]);
       false
     with Vp_util.Error.Error { stage = "image"; _ } -> true)

let test_image_validate_catches_bad_target () =
  let img = Program.layout (Progs.sum_to_n 4) in
  let img2 = Image.patch img [ (0, Instr.Jmp { target = Instr.Addr 99999 }) ] in
  match Image.validate img2 with
  | Ok () -> Alcotest.fail "expected validation error"
  | Error _ -> ()

let test_builder_prologue_epilogue_shape () =
  let p = Progs.call_chain 1 in
  let gamma = Option.get (Program.find_func p "gamma") in
  let blocks = Func.blocks gamma in
  let first = List.hd blocks in
  let last = List.nth blocks (List.length blocks - 1) in
  Alcotest.(check string) "prologue label" "gamma$prologue" (Block.label first);
  Alcotest.(check string) "epilogue label" "gamma$epilogue" (Block.label last);
  (* Prologue starts by allocating the frame. *)
  (match Block.body first with
  | Instr.Alu { op = Op.Add; dst; src1; src2 = Instr.Imm n } :: _ ->
    Alcotest.(check bool) "sp adjust" true (Reg.equal dst Reg.sp && Reg.equal src1 Reg.sp);
    Alcotest.(check bool) "negative" true (n < 0)
  | _ -> Alcotest.fail "prologue missing frame allocation");
  (* Epilogue ends in ret. *)
  match List.rev (Block.body last) with
  | Instr.Ret :: _ -> ()
  | _ -> Alcotest.fail "epilogue missing ret"

let test_builder_saves_used_temps_only () =
  (* A tiny function touches few temporaries; its prologue must be
     correspondingly small. *)
  let b = B.create () in
  B.func b "tiny" ~nargs:1 (fun fb args -> B.ret fb (Some args.(0)));
  B.func b "main" ~nargs:0 (fun fb _ ->
      let x = B.vreg fb in
      B.li fb x 3;
      let r = B.call fb "tiny" [ x ] in
      B.ret fb (Some r);
      B.halt fb);
  let p = B.program b ~entry:"main" in
  let tiny = Option.get (Program.find_func p "tiny") in
  let prologue = List.hd (Func.blocks tiny) in
  (* frame alloc + 1 temp save (the arg copy) + ra save *)
  Alcotest.(check int) "prologue length" 3 (Block.size prologue)

let test_builder_spill_allocation () =
  let p = Progs.spill_heavy 30 in
  let img = Program.layout p in
  match Image.validate img with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_builder_label_collision_free () =
  (* Two functions with structurally identical bodies must not collide
     on labels. *)
  let b = B.create () in
  let body fb (args : B.vreg array) =
    B.if_ fb (Op.Lt, args.(0), B.K 0)
      (fun () -> B.ret fb (Some args.(0)))
      (fun () -> B.ret fb (Some args.(0)))
  in
  B.func b "one" ~nargs:1 body;
  B.func b "two" ~nargs:1 body;
  B.func b "main" ~nargs:0 (fun fb _ ->
      let x = B.vreg fb in
      B.li fb x 1;
      let _ = B.call fb "one" [ x ] in
      let _ = B.call fb "two" [ x ] in
      B.halt fb);
  let p = B.program b ~entry:"main" in
  Alcotest.(check int) "three functions" 3 (List.length p.Program.funcs)

let test_builder_global_layout () =
  let b = B.create () in
  let g1 = B.global b ~words:4 in
  let g2 = B.global_init b [ 9; 8 ] in
  Alcotest.(check int) "first global at break" 16 g1;
  Alcotest.(check int) "second after first" 20 g2;
  B.func b "main" ~nargs:0 (fun fb _ -> B.halt fb);
  let p = B.program b ~entry:"main" in
  Alcotest.(check int) "break advanced" 22 p.Program.data_break;
  Alcotest.(check (list (pair int int))) "init data" [ (20, 9); (21, 8) ]
    p.Program.data_init

let test_static_size_counts () =
  let p = Progs.sum_to_n 10 in
  let img = Program.layout p in
  Alcotest.(check int) "program size = image size" (Program.static_size p)
    (Image.size img);
  Alcotest.(check bool) "static count <= size" true
    (Image.static_instruction_count img <= Image.size img)

(* Property: layout of random programs validates and roundtrips sizes. *)
let prop_layout_validates =
  QCheck.Test.make ~name:"random program layout validates" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p = Progs.random_arith ~seed in
      let img = Vp_prog.Program.layout p in
      match Image.validate img with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "vp_prog"
    [
      ( "block",
        [
          Alcotest.test_case "terminator invariant" `Quick test_block_terminator_invariant;
          Alcotest.test_case "falls through" `Quick test_block_falls_through;
        ] );
      ( "func/program",
        [
          Alcotest.test_case "func invariants" `Quick test_func_invariants;
          Alcotest.test_case "program invariants" `Quick test_program_invariants;
        ] );
      ( "layout",
        [
          Alcotest.test_case "addresses and resolution" `Quick
            test_layout_addresses_and_resolution;
          Alcotest.test_case "undefined label" `Quick test_layout_undefined_label;
          Alcotest.test_case "static sizes" `Quick test_static_size_counts;
          QCheck_alcotest.to_alcotest prop_layout_validates;
        ] );
      ( "image",
        [
          Alcotest.test_case "append and patch" `Quick test_image_append_and_patch;
          Alcotest.test_case "append rejects labels" `Quick test_image_append_rejects_labels;
          Alcotest.test_case "validate bad target" `Quick test_image_validate_catches_bad_target;
        ] );
      ( "builder",
        [
          Alcotest.test_case "prologue/epilogue shape" `Quick
            test_builder_prologue_epilogue_shape;
          Alcotest.test_case "saves used temps only" `Quick
            test_builder_saves_used_temps_only;
          Alcotest.test_case "spill allocation" `Quick test_builder_spill_allocation;
          Alcotest.test_case "label collisions" `Quick test_builder_label_collision_free;
          Alcotest.test_case "global layout" `Quick test_builder_global_layout;
        ] );
    ]
