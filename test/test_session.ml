(* The online re-optimization loop: drift detection over a phased
   workload, hot patching at quiescent points, the bounded package
   cache, and the determinism contract (backends, job counts, and
   resume-from-epoch-k). *)

module B = Vp_prog.Builder
module Op = Vp_isa.Op
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Pool = Vp_util.Pool
module Config = Vacuum.Config
module Driver = Vacuum.Driver
module Session = Vacuum.Session
module Progs = Vp_test_support.Progs

(* A drifting workload: three distinct hot loops, each executed as a
   run of repeated calls, one run after the other.  A profiler that
   only sees the opening window packages only the first phase, while a
   session keeps discovering the later ones — and because a phase
   recurs at call granularity, a package activated mid-phase is entered
   at the very next call (launch points live at region entries, so a
   phase that runs exactly once can never benefit from online
   patching).  [a]/[b]/[c] are call counts; phase A is short enough
   that an epoch-sized opening window stays inside A and early B. *)
let three_phase ~a ~b ~c =
  let bld = B.create () in
  let cell = B.global bld ~words:1 in
  let loop name f =
    B.func bld name ~nargs:1 (fun fb args ->
        let acc = B.vreg fb in
        let i = B.vreg fb in
        B.mov fb acc args.(0);
        B.for_ fb i ~from:(B.K 0) ~below:(B.K 150) (fun () -> f fb acc i);
        B.ret fb (Some acc))
  in
  loop "phase_a" (fun fb acc i ->
      B.alu fb Op.Add acc acc (B.V i);
      B.alu fb Op.Xor acc acc (B.K 3));
  loop "phase_b" (fun fb acc _ ->
      B.alu fb Op.Mul acc acc (B.K 3);
      B.alu fb Op.And acc acc (B.K 0xFFFF));
  loop "phase_c" (fun fb acc i ->
      B.alu fb Op.Sub acc acc (B.V i);
      B.alu fb Op.Or acc acc (B.K 5));
  B.func bld "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let r = B.vreg fb in
      B.li fb acc 1;
      let phase name calls =
        B.for_ fb r ~from:(B.K 0) ~below:(B.K calls) (fun () ->
            let v = B.call fb name [ acc ] in
            B.mov fb acc v)
      in
      phase "phase_a" a;
      phase "phase_b" b;
      phase "phase_c" c;
      B.store_abs fb acc cell;
      B.ret fb (Some acc);
      B.halt fb);
  B.program bld ~entry:"main"

let drifting_image = lazy (Program.layout (three_phase ~a:5 ~b:40 ~c:60))

(* The builder programs here are tiny, so the Table 3 expansion budget
   (a percentage of the original's static size) must be generous for
   any package to fit at all; the budget semantics itself is exercised
   by [test_cache_bounded] with a starved percentage. *)
let session_config ?(epochs = 4) ?(oracle = true) ?(cache_pct = 300.0) () =
  Config.default
  |> Config.with_detector Vp_hsd.Config.tiny
  |> Config.map_session (fun s ->
         { s with Config.epochs; oracle; cache_pct })

let render report = Format.asprintf "%a" Session.pp_report report

(* ---- behaviour ---- *)

let test_drift_and_activation () =
  let img = Lazy.force drifting_image in
  let s = Session.create ~config:(session_config ()) img in
  (* run past the configured epoch count so the program halts inside
     the session and the end-to-end equivalence verdict is reached *)
  let r = Session.run ~epochs:12 s in
  let news = List.concat_map (fun e -> e.Session.new_entries) r.Session.epochs in
  Alcotest.(check bool) "drift detected" true (news <> []);
  Alcotest.(check bool) "activated at least once" true (r.Session.activations >= 1);
  List.iter
    (fun e ->
      Alcotest.(check bool) "verifier clean" true e.Session.verifier_ok;
      Alcotest.(check bool) "no fallback" false e.Session.fallback;
      Alcotest.(check bool) "oracle never failed" true
        (e.Session.oracle_ok <> Some false))
    r.Session.epochs;
  Alcotest.(check bool) "halted" true r.Session.halted;
  Alcotest.(check (option bool)) "equivalent at halt" (Some true)
    r.Session.equivalent

let test_cached_phase_not_redetected () =
  (* The same two phases recur three times; once cached they must match
     (similarity in original-pc space) instead of spawning fresh cache
     entries every epoch. *)
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let s = Session.create ~config:(session_config ~epochs:6 ()) img in
  let r = Session.run ~epochs:6 s in
  let news = List.concat_map (fun e -> e.Session.new_entries) r.Session.epochs in
  let matched =
    List.concat_map (fun e -> e.Session.matched_entries) r.Session.epochs
  in
  Alcotest.(check bool) "phases cached" true (news <> []);
  Alcotest.(check bool) "recurring phases matched the cache" true (matched <> []);
  Alcotest.(check bool) "cache stays small" true
    (r.Session.final_cache_entries <= 6)

let test_coverage_beats_single_shot () =
  (* Acceptance: over a drifting workload, the session's whole-run
     coverage beats a single offline pass whose profiling window is one
     epoch (it only ever sees phase A). *)
  let img = Lazy.force drifting_image in
  let config = session_config () in
  let session_report = Session.run (Session.create ~config img) in
  let full = Emulator.run_backend img in
  Alcotest.(check bool) "baseline halts" true full.Emulator.halted;
  let epoch_fuel =
    (full.Emulator.instructions / (Config.session config).Config.epochs) + 1
  in
  let single = Driver.rewrite ~config:(Config.with_fuel epoch_fuel config) img in
  let one_shot = Emulator.run_backend (Driver.rewritten_image single) in
  let pct (o : Emulator.outcome) =
    if o.Emulator.instructions = 0 then 0.0
    else
      100.0
      *. float_of_int o.Emulator.package_instructions
      /. float_of_int o.Emulator.instructions
  in
  Alcotest.(check bool)
    (Printf.sprintf "session %.1f%% > single-shot %.1f%%"
       session_report.Session.coverage_pct (pct one_shot))
    true
    (session_report.Session.coverage_pct > pct one_shot)

let test_cache_bounded () =
  (* A starved budget: every epoch must end within it, evicting as
     needed. *)
  let img = Lazy.force drifting_image in
  let config = session_config ~cache_pct:2.0 () in
  let budget =
    int_of_float
      (0.02 *. float_of_int (Vp_prog.Image.static_instruction_count img))
  in
  let s = Session.create ~config img in
  let r = Session.run s in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d cache %d within budget %d" e.Session.epoch
           e.Session.cache_instructions budget)
        true
        (e.Session.cache_instructions <= budget))
    r.Session.epochs

let test_step_after_halt_raises () =
  let img = Program.layout (Progs.sum_to_n 50) in
  let s = Session.create ~config:(session_config ()) img in
  let _ = Session.run s in
  Alcotest.(check bool) "halted" true (Session.halted s);
  let raised =
    try
      ignore (Session.step s);
      false
    with Vacuum.Error.Error e -> e.Vacuum.Error.stage = "session"
  in
  Alcotest.(check bool) "step after halt raises" true raised

(* ---- determinism ---- *)

let test_backends_byte_identical () =
  let img = Lazy.force drifting_image in
  let run backend =
    let config = session_config () |> Config.with_backend backend in
    render (Session.run (Session.create ~config img))
  in
  let d = run Emulator.Decoded in
  Alcotest.(check string) "compiled = decoded" d (run Emulator.Compiled);
  Alcotest.(check string) "reference = decoded" d (run Emulator.Reference)

let test_resume_equals_straight_through () =
  let img = Lazy.force drifting_image in
  let config = session_config () in
  let straight = render (Session.run ~epochs:4 (Session.create ~config img)) in
  let s = Session.create ~config img in
  ignore (Session.step s);
  ignore (Session.step s);
  Alcotest.(check int) "two epochs in" 2 (Session.epochs_run s);
  let resumed = render (Session.run ~epochs:4 s) in
  Alcotest.(check string) "resume = straight-through" straight resumed

let test_jobs_invariant () =
  (* Sessions scheduled through the pool must render identically under
     any job count — nothing in a session may depend on the domain that
     runs it. *)
  let specs =
    [
      (Lazy.force drifting_image, session_config ());
      ( Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:2),
        session_config ~epochs:5 () );
      ( Program.layout (Progs.two_phase ~iters_per_phase:2000 ~repeats:3),
        session_config ~cache_pct:5.0 () );
      (Program.layout (Progs.sum_to_n 20000), session_config ~epochs:3 ());
    ]
  in
  let run (img, config) = render (Session.run (Session.create ~config img)) in
  let seq = Pool.map ~jobs:1 run specs in
  let par = Pool.map ~jobs:4 run specs in
  List.iteri
    (fun i (a, b) -> Alcotest.(check string) (Printf.sprintf "spec %d" i) a b)
    (List.combine seq par)

(* ---- fault plans over a generated drifting workload ---- *)

(* A generated multi-phase binary: enough planted phases and rounds
   that the cache churns (drift, re-assembly, activation) across
   epochs even while the snapshot stream is being corrupted.  The
   detector needs the campaign's BBB sizing — tiny's 4-entry table
   thrashes on generated code and never fires. *)
let gen_drifting_image =
  lazy
    (Program.layout
       (Vp_gen.Gen.program ~seed:41
          {
            Vp_gen.Gen.default with
            Vp_gen.Gen.phases = 4;
            rounds = 3;
            phase_iters = 60;
          }))

let gen_detector = { Vp_hsd.Config.tiny with Vp_hsd.Config.sets = 64 }

let faulted_config ?(epochs = 6) plan =
  Config.default
  |> Config.with_detector gen_detector
  |> Config.with_fault plan
  |> Config.map_session (fun s ->
         { s with Config.epochs; oracle = true; cache_pct = 300.0 })

let corruption_plan =
  Vp_fault.Plan.v ~seed:9 ~drop:0.3 ~duplicate:0.2 ~reorder:0.2 ~saturate:0.2
    ~zero_counters:0.2 ~alias:0.2 "session-snapshot-corruption"

let rung_name = function
  | Driver.Drop_package -> "drop-package"
  | Driver.Drop_region -> "drop-region"
  | Driver.Fallback_image -> "fallback-image"

(* The demotion ladder's order inside one epoch: [Fallback_image] is
   terminal (everything was given up), so it may appear at most once
   and only as the last step, and the [fallback] flag must agree with
   the drop list. *)
let check_ladder_order (e : Session.epoch_report) =
  let rungs = List.map (fun (d : Driver.demotion) -> d.Driver.rung) e.Session.drops in
  let rec terminal = function
    | [] | [ Driver.Fallback_image ] -> true
    | Driver.Fallback_image :: _ -> false
    | _ :: rest -> terminal rest
  in
  Alcotest.(check bool)
    (Printf.sprintf "epoch %d: fallback rung is terminal [%s]" e.Session.epoch
       (String.concat ";" (List.map rung_name rungs)))
    true (terminal rungs);
  Alcotest.(check bool)
    (Printf.sprintf "epoch %d: fallback flag agrees with drops" e.Session.epoch)
    (List.mem Driver.Fallback_image rungs)
    e.Session.fallback

let test_fault_corruption_demotes_gracefully () =
  (* Snapshot corruption may cost coverage, never correctness: every
     epoch's final image still verifies (demotion resolved the
     damage), the ladder is walked in order, and the halted machine is
     architecturally equivalent to the original. *)
  let img = Lazy.force gen_drifting_image in
  let config = faulted_config corruption_plan in
  let r = Session.run ~epochs:12 (Session.create ~config img) in
  List.iter
    (fun (e : Session.epoch_report) ->
      check_ladder_order e;
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d verifier clean after demotion"
           e.Session.epoch)
        true e.Session.verifier_ok)
    r.Session.epochs;
  Alcotest.(check bool) "halted" true r.Session.halted;
  Alcotest.(check (option bool)) "equivalent at halt" (Some true)
    r.Session.equivalent

let test_fault_exhausted_budget_drops_everything () =
  (* A zero expansion budget screens out every package, one
     [Drop_package] rung at a time: the ladder is walked every epoch
     the cache tries to assemble, no package code ever runs, and the
     session still halts equivalent. *)
  let img = Lazy.force gen_drifting_image in
  let plan = Vp_fault.Plan.v ~seed:3 ~max_expansion_pct:0.0 "budget-exhausted" in
  let r = Session.run ~epochs:12 (Session.create ~config:(faulted_config plan) img) in
  List.iter check_ladder_order r.Session.epochs;
  Alcotest.(check bool) "ladder walked at least once" true
    (List.exists
       (fun (e : Session.epoch_report) -> e.Session.drops <> [])
       r.Session.epochs);
  Alcotest.(check int) "no package code ever ran" 0
    r.Session.package_instructions;
  Alcotest.(check bool) "halted" true r.Session.halted;
  Alcotest.(check (option bool)) "equivalent at halt" (Some true)
    r.Session.equivalent

let test_fault_jobs_invariant () =
  (* Fault injection derives per-epoch seeds from the plan, never from
     scheduling: faulted sessions must render byte-identically under
     any pool job count. *)
  let img = Lazy.force gen_drifting_image in
  let specs =
    [
      (img, faulted_config corruption_plan);
      (img, faulted_config ~epochs:4 (Vp_fault.Plan.with_seed corruption_plan 77));
      (Lazy.force drifting_image, faulted_config corruption_plan);
    ]
  in
  let run (i, config) = render (Session.run (Session.create ~config i)) in
  let seq = Pool.map ~jobs:1 run specs in
  let par = Pool.map ~jobs:4 run specs in
  List.iteri
    (fun i (a, b) -> Alcotest.(check string) (Printf.sprintf "spec %d" i) a b)
    (List.combine seq par)

(* ---- per-epoch telemetry (satellite) ---- *)

let telemetry_config ?epochs () =
  session_config ?epochs ()
  |> Config.with_telemetry (Vp_telemetry.on ())

(* The merged vp-timeline-trace/1 bytes of a report's epoch timelines —
   the exact artifact `vpack serve --trace-dir` ships, so byte equality
   here is byte equality of the shipped file. *)
let trace_string (r : Session.report) =
  let path = Filename.temp_file "vp-session-trace" ".jsonl" in
  Vp_telemetry.Sink.write_trace ~path
    (List.map (fun (e : Session.epoch_report) -> e.Session.timeline)
       r.Session.epochs);
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  s

let test_epoch_tags_dense_and_ordered () =
  (* Stepping manually and then resuming with [run] must produce the
     same dense, strictly ordered epoch-K run labels as a straight run:
     the tag records the epoch's absolute index, not the call shape. *)
  let img = Lazy.force drifting_image in
  let config = telemetry_config () in
  let s = Session.create ~config img in
  ignore (Session.step s);
  ignore (Session.step s);
  let r = Session.run ~epochs:4 s in
  Alcotest.(check int) "all epochs reported" 4 (List.length r.Session.epochs);
  List.iteri
    (fun i (e : Session.epoch_report) ->
      Alcotest.(check int) (Printf.sprintf "epoch %d dense" i) i e.Session.epoch;
      Alcotest.(check (option string))
        (Printf.sprintf "epoch %d run label" i)
        (Some (Printf.sprintf "epoch-%d" i))
        (Vp_telemetry.name e.Session.timeline))
    r.Session.epochs

let test_epoch_trace_byte_identical () =
  let img = Lazy.force drifting_image in
  let config = telemetry_config () in
  let straight = trace_string (Session.run ~epochs:4 (Session.create ~config img)) in
  (* resume ≡ straight-through, down to the trace bytes *)
  let s = Session.create ~config img in
  ignore (Session.step s);
  Alcotest.(check string) "resume trace = straight-through" straight
    (trace_string (Session.run ~epochs:4 s));
  (* backend-invariant *)
  List.iter
    (fun backend ->
      let config = Config.with_backend backend config in
      Alcotest.(check string)
        (Emulator.backend_name backend ^ " trace = decoded trace")
        straight
        (trace_string (Session.run ~epochs:4 (Session.create ~config img))))
    [ Emulator.Reference; Emulator.Compiled ];
  (* jobs-invariant: the same sessions through the pool *)
  let specs = [ 1; 2; 3 ] in
  let run _ = trace_string (Session.run ~epochs:4 (Session.create ~config img)) in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "spec %d jobs 1 = jobs 4" i) a b)
    (List.combine (Pool.map ~jobs:1 run specs) (Pool.map ~jobs:4 run specs))

(* ---- the branch map (profile folding) ---- *)

let test_branch_map_targets () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:2) in
  let config = Config.with_detector Vp_hsd.Config.tiny Config.default in
  let rw = Driver.rewrite ~config img in
  let emitted = rw.Driver.emitted in
  let map = emitted.Vp_package.Emit.branch_map in
  Alcotest.(check bool) "branch map populated" true (map <> []);
  let code = emitted.Vp_package.Emit.image.Vp_prog.Image.code in
  let is_br i =
    match code.(i) with Vp_isa.Instr.Br _ -> true | _ -> false
  in
  List.iter
    (fun (pc, opc) ->
      Alcotest.(check bool)
        (Printf.sprintf "package pc %d is a Br" pc)
        true
        (pc >= img.Vp_prog.Image.orig_limit && is_br pc);
      Alcotest.(check bool)
        (Printf.sprintf "original pc %d is a Br" opc)
        true
        (opc < img.Vp_prog.Image.orig_limit && is_br opc))
    map

(* ---- config rendering (satellite) ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_config_to_json () =
  let j = Config.to_json Config.default in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains j needle))
    [
      "\"session\"";
      "\"epochs\"";
      "\"cache_pct\"";
      "\"drift_threshold\"";
      "\"backend\"";
      "\"detector\"";
    ]

let () =
  Alcotest.run "vacuum_session"
    [
      ( "behaviour",
        [
          Alcotest.test_case "drift and activation" `Slow
            test_drift_and_activation;
          Alcotest.test_case "cached phases match, not re-drift" `Slow
            test_cached_phase_not_redetected;
          Alcotest.test_case "coverage beats single-shot" `Slow
            test_coverage_beats_single_shot;
          Alcotest.test_case "cache bounded by budget" `Slow test_cache_bounded;
          Alcotest.test_case "step after halt raises" `Quick
            test_step_after_halt_raises;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical across backends" `Slow
            test_backends_byte_identical;
          Alcotest.test_case "resume = straight-through" `Slow
            test_resume_equals_straight_through;
          Alcotest.test_case "jobs 1 = jobs 4" `Slow test_jobs_invariant;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "epoch tags dense and ordered" `Slow
            test_epoch_tags_dense_and_ordered;
          Alcotest.test_case "epoch trace byte-identical" `Slow
            test_epoch_trace_byte_identical;
        ] );
      ( "fault plans",
        [
          Alcotest.test_case "snapshot corruption demotes gracefully" `Slow
            test_fault_corruption_demotes_gracefully;
          Alcotest.test_case "exhausted budget drops every package" `Slow
            test_fault_exhausted_budget_drops_everything;
          Alcotest.test_case "faulted jobs 1 = jobs 4" `Slow
            test_fault_jobs_invariant;
        ] );
      ( "branch map",
        [ Alcotest.test_case "targets are branches" `Quick test_branch_map_targets ] );
      ( "config",
        [ Alcotest.test_case "to_json covers session" `Quick test_config_to_json ]
      );
    ]
