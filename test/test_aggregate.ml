(* Tests for vp_aggregate: the weighted-profile merge algebra
   (associativity, commutativity, identity, saturation censoring), the
   vp-profile-wire/1 format, and shard/job invariance of the fleet
   aggregator. *)

module Snapshot = Vp_hsd.Snapshot
module Profile = Vp_aggregate.Profile
module Wire = Vp_aggregate.Wire
module Shard = Vp_aggregate.Shard
module Gen = Vp_test_support.Gen

let counter_max = 511

let entry pc executed taken = { Snapshot.pc; executed; taken }

let snap ?(id = 0) ?(at = 0) ?(until = 1000) branches =
  { Snapshot.id; detected_at = at; ended_at = until; branches }

let profile_of_seed seed =
  let nsnaps = 1 + (seed mod 4) in
  Profile.of_snapshots ~counter_max
    (Gen.random_snapshots ~seed ~count:nsnaps)

(* Profiles compare structurally: counter_max, counts, and the
   canonical entry list are all plain data. *)
let check_equal what a b =
  Alcotest.(check bool) what true (a = b);
  Alcotest.(check bool) (what ^ " (digest)") true
    (Profile.digest a = Profile.digest b)

(* --- merge algebra --- *)

let test_merge_basic () =
  let a = Profile.of_snapshots ~counter_max [ snap [ entry 10 100 40 ] ] in
  let b = Profile.of_snapshots ~counter_max [ snap [ entry 10 50 10; entry 20 7 7 ] ] in
  let m = Profile.merge a b in
  Alcotest.(check int) "runs" 2 m.Profile.runs;
  Alcotest.(check int) "branches" 2 (Profile.branch_count m);
  let e10 = List.find (fun e -> e.Profile.pc = 10) m.Profile.entries in
  Alcotest.(check int) "executed summed" 150 e10.Profile.executed;
  Alcotest.(check int) "taken summed" 50 e10.Profile.taken;
  Alcotest.(check int) "two observations" 2 e10.Profile.obs;
  Alcotest.(check int) "no censoring" 0 e10.Profile.censored

let test_merge_mismatched_caps () =
  let a = Profile.of_snapshots ~counter_max [ snap [ entry 10 9 1 ] ] in
  let b = Profile.of_snapshots ~counter_max:31 [ snap [ entry 10 9 1 ] ] in
  Alcotest.check_raises "caps must agree"
    (Vp_util.Error.Error
       {
         Vp_util.Error.stage = "aggregate";
         what = "cannot merge profiles with counter caps 511 and 31";
         pc = None;
         label = None;
         workload = None;
       })
    (fun () -> ignore (Profile.merge a b))

let test_censoring () =
  (* A saturated observation is censored: the estimate adds a full
     counter range on top of the raw sum. *)
  let a = Profile.of_snapshots ~counter_max [ snap [ entry 10 511 511 ] ] in
  let b = Profile.of_snapshots ~counter_max [ snap [ entry 10 100 0 ] ] in
  let m = Profile.merge a b in
  let e = List.hd m.Profile.entries in
  Alcotest.(check int) "raw sum" 611 e.Profile.executed;
  Alcotest.(check int) "one censored" 1 e.Profile.censored;
  Alcotest.(check int) "estimate corrected" (611 + 511)
    (Profile.estimated_executed m e)

let test_to_snapshot_scaling () =
  let p =
    Profile.of_snapshots ~counter_max
      [ snap [ entry 10 400 200; entry 20 100 100 ] ]
  in
  let s = Profile.to_snapshot ~id:3 p in
  Alcotest.(check int) "id" 3 s.Snapshot.id;
  let e10 = List.find (fun e -> e.Snapshot.pc = 10) s.Snapshot.branches in
  let e20 = List.find (fun e -> e.Snapshot.pc = 20) s.Snapshot.branches in
  Alcotest.(check int) "peak scales to the cap" counter_max
    e10.Snapshot.executed;
  Alcotest.(check bool) "ratios preserved" true
    (abs (e20.Snapshot.executed - (counter_max / 4)) <= 1);
  Alcotest.(check bool) "taken fraction preserved" true
    (abs (e10.Snapshot.taken - (e10.Snapshot.executed / 2)) <= 1)

let test_empty_identity_units () =
  let e = Profile.empty ~counter_max in
  Alcotest.(check bool) "empty is empty" true (Profile.is_empty e);
  Alcotest.(check int) "no estimate" 0 (Profile.total_estimated e);
  Alcotest.(check (list pass)) "no synthetic branches" []
    (Profile.to_snapshot e).Snapshot.branches

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:100
    QCheck.(triple small_nat small_nat small_nat)
    (fun (x, y, z) ->
      let a = profile_of_seed x
      and b = profile_of_seed (y + 1000)
      and c = profile_of_seed (z + 2000) in
      Profile.merge (Profile.merge a b) c
      = Profile.merge a (Profile.merge b c))

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (x, y) ->
      let a = profile_of_seed x and b = profile_of_seed (y + 1000) in
      Profile.merge a b = Profile.merge b a)

let prop_merge_identity =
  QCheck.Test.make ~name:"empty is the merge identity" ~count:100
    QCheck.small_nat
    (fun x ->
      let a = profile_of_seed x in
      let e = Profile.empty ~counter_max in
      Profile.merge a e = a && Profile.merge e a = a)

let prop_censoring_monotone =
  (* Estimates never under-read the raw sums, and an entry's correction
     grows exactly with its censored-observation count. *)
  QCheck.Test.make ~name:"censoring correction is monotone" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (x, y) ->
      let m = Profile.merge (profile_of_seed x) (profile_of_seed (y + 1000)) in
      List.for_all
        (fun e ->
          let est = Profile.estimated_executed m e in
          est >= e.Profile.executed
          && est = e.Profile.executed + (e.Profile.censored * m.Profile.counter_max)
          && Profile.estimated_taken m e >= e.Profile.taken)
        m.Profile.entries)

(* --- wire format --- *)

let runs_of_seed seed n =
  List.init n (fun i ->
      {
        Wire.run_id = i;
        weight = 1 + (i mod 3);
        counter_max;
        snapshots = Gen.random_snapshots ~seed:(seed + i) ~count:(1 + (i mod 5));
      })

let test_wire_roundtrip () =
  let runs = runs_of_seed 7 9 in
  match Wire.decode (Wire.encode runs) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok decoded -> Alcotest.(check bool) "roundtrip" true (decoded = runs)

let test_wire_rejects_corruption () =
  let s = Wire.encode (runs_of_seed 3 4) in
  Alcotest.(check bool) "valid" true (Result.is_ok (Wire.validate s));
  (* Flip one body byte: the checksum must catch it. *)
  let b = Bytes.of_string s in
  let i = String.length Wire.schema + 3 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
  Alcotest.(check bool) "corrupt byte rejected" true
    (Result.is_error (Wire.validate (Bytes.to_string b)));
  Alcotest.(check bool) "truncation rejected" true
    (Result.is_error (Wire.validate (String.sub s 0 (String.length s - 2))));
  Alcotest.(check bool) "bad header rejected" true
    (Result.is_error (Wire.validate ("vp-obs-trace/1\n" ^ s)))

let test_wire_rejects_invalid_counters () =
  (* Hand-corrupt a count past the cap by re-encoding with a larger
     cap, then decoding under the real one is not possible through the
     API — so build the invalid stream directly. *)
  let bad =
    [
      {
        Wire.run_id = 0;
        weight = 1;
        counter_max = 15;
        snapshots = [ snap [ entry 4 100 3 ] ];
      };
    ]
  in
  Alcotest.(check bool) "executed over cap rejected" true
    (Result.is_error (Wire.decode (Wire.encode bad)))

let test_wire_rejects_descending_pcs () =
  let bad =
    [
      {
        Wire.run_id = 0;
        weight = 1;
        counter_max;
        snapshots = [ snap [ entry 20 5 1; entry 10 5 1 ] ];
      };
    ]
  in
  Alcotest.check_raises "descending pcs"
    (Vp_util.Error.Error
       {
         Vp_util.Error.stage = "wire";
         what = "snapshot 0: branch pcs not strictly ascending";
         pc = Some 10;
         label = None;
         workload = None;
       })
    (fun () -> ignore (Wire.encode bad))

let wire_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let wire_header s = String.sub s 0 (String.index s '\n' + 1)

let test_wire_rejects_overlong_varint () =
  (* A 9th varint byte may only carry the native int's remaining 6
     value bits: 0x40 at shift 56 would wrap into the sign bit and
     decode as an accepted negative run id.  It must be rejected at
     its byte offset instead. *)
  let s = Wire.encode (runs_of_seed 1 1) in
  let evil = wire_header s ^ "R" ^ String.make 8 '\x80' ^ "\x40" in
  match Wire.decode evil with
  | Ok runs ->
    Alcotest.failf "overlong varint accepted (%d runs)" (List.length runs)
  | Error e ->
    Alcotest.(check bool)
      ("overflow named with its offset: " ^ e)
      true
      (wire_contains e "varint overflow at byte")

let test_wire_mid_varint_cut_names_byte () =
  (* A stream cut mid-varint must come back as a typed truncation
     error naming the byte offset — never an escaping exception. *)
  let s = Wire.encode (runs_of_seed 2 2) in
  let cut = String.length (wire_header s) + 1 in
  match Wire.decode (String.sub s 0 cut) with
  | Ok _ -> Alcotest.fail "mid-varint cut accepted"
  | Error e ->
    Alcotest.(check bool)
      ("truncation named with its offset: " ^ e)
      true
      (wire_contains e "truncated varint at byte")
  | exception exn ->
    Alcotest.failf "mid-varint cut raised %s" (Printexc.to_string exn)

let test_wire_every_truncation_total () =
  let s = Wire.encode (runs_of_seed 5 3) in
  for cut = 0 to String.length s - 1 do
    match Wire.decode (String.sub s 0 cut) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" cut
    | Error _ -> ()
    | exception exn ->
      Alcotest.failf "truncation to %d bytes raised %s" cut
        (Printexc.to_string exn)
  done

let test_wire_bit_flips_total () =
  let s = Wire.encode (runs_of_seed 11 4) in
  let rng = Vp_util.Rng.create ~seed:29 in
  for _ = 1 to 200 do
    let at = Vp_util.Rng.int rng (String.length s) in
    let bit = Vp_util.Rng.int rng 8 in
    let b = Bytes.of_string s in
    Bytes.set b at (Char.chr (Char.code s.[at] lxor (1 lsl bit)));
    match Wire.decode (Bytes.to_string b) with
    | Ok _ ->
      Alcotest.failf "bit %d of byte %d flipped: accepted" bit at
    | Error _ -> ()
    | exception exn ->
      Alcotest.failf "bit %d of byte %d flipped: raised %s" bit at
        (Printexc.to_string exn)
  done

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip on random streams" ~count:60
    QCheck.(pair small_nat (int_range 0 12))
    (fun (seed, n) ->
      let runs = runs_of_seed seed n in
      Wire.decode (Wire.encode runs) = Ok runs)

(* --- sharded aggregation --- *)

let test_shard_invariance () =
  let runs = runs_of_seed 11 30 in
  let reference, _ = Shard.aggregate ~shards:1 ~jobs:1 ~counter_max runs in
  List.iter
    (fun (shards, jobs) ->
      let p, stats = Shard.aggregate ~shards ~jobs ~counter_max runs in
      check_equal
        (Printf.sprintf "shards=%d jobs=%d matches the sequential reference"
           shards jobs)
        reference p;
      Alcotest.(check int) "all runs ingested" 30 stats.Shard.runs)
    [ (2, 1); (8, 1); (8, 4); (17, 3); (64, 2) ]

let test_shard_classes () =
  (* Even/odd snapshot ids land in different classes; per-class
     profiles see only their own snapshots. *)
  let runs = runs_of_seed 5 12 in
  let classify (s : Snapshot.t) =
    if s.Snapshot.id mod 2 = 0 then Some 0 else Some 1
  in
  let classes, stats =
    Shard.aggregate_classes ~shards:4 ~jobs:2 ~counter_max ~classify runs
  in
  Alcotest.(check int) "two classes" 2 (List.length classes);
  Alcotest.(check int) "nothing dropped" 0 stats.Shard.dropped;
  let total =
    List.fold_left (fun acc (_, p) -> acc + p.Profile.snapshots) 0 classes
  in
  Alcotest.(check int) "partition covers everything" stats.Shard.classified
    total

let test_shard_rejects_mixed_caps () =
  let runs =
    [
      { Wire.run_id = 0; weight = 1; counter_max; snapshots = [] };
      { Wire.run_id = 1; weight = 1; counter_max = 31; snapshots = [] };
    ]
  in
  Alcotest.(check bool) "mixed caps rejected" true
    (try
       ignore (Shard.aggregate ~counter_max runs);
       false
     with Vp_util.Error.Error e -> e.Vp_util.Error.stage = "aggregate")

let prop_shard_count_invisible =
  QCheck.Test.make ~name:"aggregate independent of shard count" ~count:30
    QCheck.(triple small_nat (int_range 1 20) (int_range 1 6))
    (fun (seed, shards, jobs) ->
      let runs = runs_of_seed seed 14 in
      let a, _ = Shard.aggregate ~shards:1 ~jobs:1 ~counter_max runs in
      let b, _ = Shard.aggregate ~shards ~jobs ~counter_max runs in
      a = b && Profile.digest a = Profile.digest b)

let () =
  Alcotest.run "vp_aggregate"
    [
      ( "profile",
        [
          Alcotest.test_case "merge sums" `Quick test_merge_basic;
          Alcotest.test_case "mismatched caps" `Quick test_merge_mismatched_caps;
          Alcotest.test_case "censoring" `Quick test_censoring;
          Alcotest.test_case "to_snapshot scaling" `Quick test_to_snapshot_scaling;
          Alcotest.test_case "empty units" `Quick test_empty_identity_units;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_merge_commutative;
          QCheck_alcotest.to_alcotest prop_merge_identity;
          QCheck_alcotest.to_alcotest prop_censoring_monotone;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "corruption" `Quick test_wire_rejects_corruption;
          Alcotest.test_case "invalid counters" `Quick test_wire_rejects_invalid_counters;
          Alcotest.test_case "descending pcs" `Quick test_wire_rejects_descending_pcs;
          Alcotest.test_case "overlong varint rejected" `Quick
            test_wire_rejects_overlong_varint;
          Alcotest.test_case "mid-varint cut names its byte" `Quick
            test_wire_mid_varint_cut_names_byte;
          Alcotest.test_case "every truncation total" `Quick
            test_wire_every_truncation_total;
          Alcotest.test_case "bit flips total" `Quick test_wire_bit_flips_total;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
        ] );
      ( "shard",
        [
          Alcotest.test_case "shard invariance" `Quick test_shard_invariance;
          Alcotest.test_case "classification" `Quick test_shard_classes;
          Alcotest.test_case "mixed caps" `Quick test_shard_rejects_mixed_caps;
          QCheck_alcotest.to_alcotest prop_shard_count_invisible;
        ] );
    ]
