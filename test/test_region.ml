(* Tests for vp_region: marking from snapshots, the inference
   fix-point, heuristic growth, and the identify driver. *)

module Instr = Vp_isa.Instr
module Op = Vp_isa.Op
module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Cfg = Vp_cfg.Cfg
module Snapshot = Vp_hsd.Snapshot
module T = Vp_region.Temperature
module Region = Vp_region.Region
module Marking = Vp_region.Marking
module Inference = Vp_region.Inference
module Growth = Vp_region.Growth
module Identify = Vp_region.Identify
module B = Vp_prog.Builder
module Progs = Vp_test_support.Progs

let entry pc executed taken = { Snapshot.pc; executed; taken }

let snap branches =
  { Snapshot.id = 0; detected_at = 0; ended_at = 1000; branches }

(* A loop whose body holds a strongly taken-biased branch: the "then"
   arm (fall-through) is rare. *)
let loop_with_rare_arm () =
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      let m = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 100) (fun () ->
          B.alu fb Op.Rem m i (B.K 50);
          B.if_ fb (Op.Eq, m, B.K 0)
            (fun () -> B.alu fb Op.Add acc acc (B.K 1000))
            (fun () -> B.alu fb Op.Add acc acc (B.K 1)));
      B.ret fb (Some acc);
      B.halt fb);
  Program.layout (B.program b ~entry:"main")

(* All conditional-branch addresses of a function, ascending. *)
let branch_addrs cfg =
  List.init (Cfg.num_blocks cfg) (Cfg.branch_addr cfg) |> List.filter_map Fun.id

let main_cfg img =
  Cfg.recover img (Option.get (Image.find_sym img "main"))

let arc_to cfg mf b kind =
  List.find (fun (a : Cfg.arc) -> a.Cfg.kind = kind) (Cfg.succs cfg b)
  |> fun a -> (a, Region.arc_temp mf a)

let test_marking_sets_block_and_arcs () =
  let img = loop_with_rare_arm () in
  let cfg = main_cfg img in
  let branches = branch_addrs cfg in
  Alcotest.(check int) "two cond branches" 2 (List.length branches);
  let if_pc = List.nth branches 1 in
  (* Strongly taken-biased: 98/100; fall-through weight 2 is cold. *)
  let region = Region.create img (snap [ entry if_pc 100 98 ]) in
  Marking.mark region;
  let mf = Option.get (Region.find_func region "main") in
  let b = Option.get (Cfg.block_at cfg if_pc) in
  Alcotest.(check bool) "branch block hot" true (T.is_hot (Region.temp mf b));
  Alcotest.(check int) "weight" 100 (Region.weight mf b);
  (match Region.taken_prob mf b with
  | Some p -> Alcotest.(check (float 1e-9)) "taken prob" 0.98 p
  | None -> Alcotest.fail "no taken probability");
  let _, t_taken = arc_to cfg mf b Cfg.Taken in
  let _, t_ft = arc_to cfg mf b Cfg.Fallthrough in
  Alcotest.(check string) "taken arc hot" "hot" (T.name t_taken);
  Alcotest.(check string) "ft arc cold" "cold" (T.name t_ft)

let test_marking_weight_threshold_rule () =
  (* 80/20 with large counts: the 20% direction still exceeds the
     execution threshold (16) and is hot. *)
  let img = loop_with_rare_arm () in
  let cfg = main_cfg img in
  let if_pc = List.nth (branch_addrs cfg) 1 in
  let region = Region.create img (snap [ entry if_pc 400 320 ]) in
  Marking.mark region;
  let mf = Option.get (Region.find_func region "main") in
  let b = Option.get (Cfg.block_at cfg if_pc) in
  let _, t_ft = arc_to cfg mf b Cfg.Fallthrough in
  Alcotest.(check string) "20% with weight 80 is hot" "hot" (T.name t_ft)

let test_inference_propagates () =
  let img = loop_with_rare_arm () in
  let cfg = main_cfg img in
  let if_pc = List.nth (branch_addrs cfg) 1 in
  let head_pc = List.nth (branch_addrs cfg) 0 in
  let region = Region.create img (snap [ entry if_pc 100 98 ]) in
  Marking.mark region;
  let rounds = Inference.run region in
  Alcotest.(check bool) "some rounds" true (rounds >= 1);
  let mf = Option.get (Region.find_func region "main") in
  let if_b = Option.get (Cfg.block_at cfg if_pc) in
  let then_b =
    (List.find (fun (a : Cfg.arc) -> a.Cfg.kind = Cfg.Fallthrough) (Cfg.succs cfg if_b)).Cfg.dst
  in
  let else_b =
    (List.find (fun (a : Cfg.arc) -> a.Cfg.kind = Cfg.Taken) (Cfg.succs cfg if_b)).Cfg.dst
  in
  Alcotest.(check string) "rare then arm cold" "cold" (T.name (Region.temp mf then_b));
  Alcotest.(check string) "common else arm hot" "hot" (T.name (Region.temp mf else_b));
  (* The loop-head branch was missing from the snapshot but is
     recovered by inference. *)
  let head_b = Option.get (Cfg.block_at cfg head_pc) in
  Alcotest.(check string) "loop head inferred hot" "hot" (T.name (Region.temp mf head_b));
  (* Exit arcs exist: at least the loop exit and the cold then arm. *)
  Alcotest.(check bool) "has exit arcs" true (Region.exit_arcs mf <> []);
  Alcotest.(check int) "no conflicts" 0 (Region.conflicts region)

let test_inference_idempotent () =
  let img = loop_with_rare_arm () in
  let cfg = main_cfg img in
  let if_pc = List.nth (branch_addrs cfg) 1 in
  let region = Region.create img (snap [ entry if_pc 100 98 ]) in
  Marking.mark region;
  let _ = Inference.run region in
  let mf = Option.get (Region.find_func region "main") in
  let before = List.init (Cfg.num_blocks cfg) (fun b -> T.name (Region.temp mf b)) in
  let rounds = Inference.run region in
  Alcotest.(check int) "idempotent single round" 1 rounds;
  let after = List.init (Cfg.num_blocks cfg) (fun b -> T.name (Region.temp mf b)) in
  Alcotest.(check (list string)) "unchanged" before after

let test_inference_off_skips_branch_blocks () =
  let img = loop_with_rare_arm () in
  let cfg = main_cfg img in
  let if_pc = List.nth (branch_addrs cfg) 1 in
  let head_pc = List.nth (branch_addrs cfg) 0 in
  let region = Region.create img (snap [ entry if_pc 100 98 ]) in
  Marking.mark region;
  let _ = Inference.run ~block_inference:false region in
  let mf = Option.get (Region.find_func region "main") in
  let head_b = Option.get (Cfg.block_at cfg head_pc) in
  Alcotest.(check string) "loop head stays unknown without inference" "unknown"
    (T.name (Region.temp mf head_b))

let test_call_rule_pulls_callee () =
  (* Snapshot only contains main's loop-head branch; the hot loop body
     calls phase_a, whose prologue must become hot. *)
  let img = Program.layout (Progs.two_phase ~iters_per_phase:10 ~repeats:5) in
  let cfg = main_cfg img in
  let head_pc = List.hd (branch_addrs cfg) in
  let region = Region.create img (snap [ entry head_pc 100 2 ]) in
  Marking.mark region;
  let _ = Inference.run region in
  (match Region.find_func region "phase_a" with
  | Some mf ->
    Alcotest.(check string) "callee prologue hot" "hot"
      (T.name (Region.temp mf (Cfg.entry (Region.cfg mf))))
  | None -> Alcotest.fail "phase_a not pulled into region");
  match Region.find_func region "phase_b" with
  | Some _ -> ()
  | None -> Alcotest.fail "phase_b not pulled into region"

let test_growth_unknown_arc_adoption () =
  (* Two hot blocks joined by an unknown arc: growth adopts it. *)
  let img = loop_with_rare_arm () in
  let cfg = main_cfg img in
  let if_pc = List.nth (branch_addrs cfg) 1 in
  let region = Region.create img (snap [ entry if_pc 100 98 ]) in
  Marking.mark region;
  let mf = Option.get (Region.find_func region "main") in
  (* Manually mark the else successor hot without touching the arc. *)
  let if_b = Option.get (Cfg.block_at cfg if_pc) in
  let taken_arc =
    List.find (fun (a : Cfg.arc) -> a.Cfg.kind = Cfg.Taken) (Cfg.succs cfg if_b)
  in
  (* Reset-free check: the arc is already hot from marking, so pick
     the else block's own out-arc instead. *)
  let else_b = taken_arc.Cfg.dst in
  let _ = Region.set_temp mf else_b T.Hot in
  let out = List.hd (Cfg.succs cfg else_b) in
  let _ = Region.set_temp mf out.Cfg.dst T.Hot in
  Alcotest.(check string) "arc unknown before" "unknown"
    (T.name (Region.arc_temp mf out));
  let _ = Growth.grow region in
  Alcotest.(check string) "arc adopted" "hot" (T.name (Region.arc_temp mf out))

let test_growth_adds_predecessor () =
  let img = loop_with_rare_arm () in
  let cfg = main_cfg img in
  let if_pc = List.nth (branch_addrs cfg) 1 in
  let region = Region.create img (snap [ entry if_pc 100 98 ]) in
  Marking.mark region;
  let _ = Inference.run region in
  let mf = Option.get (Region.find_func region "main") in
  let hot_before = List.length (Region.hot_blocks mf) in
  let adopted = Growth.grow ~max_blocks:1 region in
  let hot_after = List.length (Region.hot_blocks mf) in
  (* The return value also counts arc-only connector adoptions, so it
     bounds the block delta from above. *)
  Alcotest.(check bool) "adopted bounds delta" true (adopted >= hot_after - hot_before);
  Alcotest.(check bool) "blocks grew" true (hot_after >= hot_before)

let test_growth_respects_budget () =
  let img = loop_with_rare_arm () in
  let cfg = main_cfg img in
  let if_pc = List.nth (branch_addrs cfg) 1 in
  let mk max_blocks =
    let region = Region.create img (snap [ entry if_pc 100 98 ]) in
    Marking.mark region;
    let _ = Inference.run region in
    Growth.grow ~max_blocks region
  in
  Alcotest.(check bool) "bigger budget adopts at least as much" true (mk 5 >= mk 1)

let test_identify_end_to_end () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:10 ~repeats:5) in
  let cfg = main_cfg img in
  let head_pc = List.hd (branch_addrs cfg) in
  let region, stats =
    Identify.identify_with_stats img (snap [ entry head_pc 100 2 ])
  in
  Alcotest.(check bool) "several functions" true (stats.Identify.functions >= 3);
  Alcotest.(check bool) "hot blocks" true (stats.Identify.hot_blocks > 0);
  Alcotest.(check int) "selected counts agree" stats.Identify.selected_instructions
    (Region.selected_instructions region);
  Alcotest.(check bool) "selected nonzero" true (stats.Identify.selected_instructions > 0)

(* Property: marking + inference never produce conflicts on snapshots
   drawn from real branch addresses, and hot blocks always stay a
   subset of all blocks. *)
let prop_inference_no_conflicts =
  QCheck.Test.make ~name:"inference conflict-free on real snapshots" ~count:30
    QCheck.(pair (int_range 10 400) (int_range 1 399))
    (fun (executed, taken_raw) ->
      let taken = min executed taken_raw in
      let img = loop_with_rare_arm () in
      let cfg = main_cfg img in
      let pcs = branch_addrs cfg in
      let branches = List.map (fun pc -> entry pc executed taken) pcs in
      let region = Region.create img (snap branches) in
      Marking.mark region;
      let _ = Inference.run region in
      let _ = Growth.grow region in
      Region.conflicts region = 0)

(* Robustness: marking and the whole identify driver are total over
   adversarial snapshots.  Entries that do not map onto the program
   are skipped and counted, never fatal. *)
let prop_marking_total_on_adversarial =
  QCheck.Test.make ~name:"marking total on adversarial snapshots" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let img =
        Program.layout
          (Vp_test_support.Gen.random_phased ~seed:(seed land 0xFF))
      in
      let snaps = Vp_test_support.Gen.adversarial_snapshots ~seed img in
      List.for_all
        (fun s ->
          let region = Region.create img s in
          let stats = Marking.mark_with_stats region in
          let entries = List.length s.Snapshot.branches in
          let accounted =
            stats.Marking.marked + stats.Marking.skipped_no_symbol
            + stats.Marking.skipped_no_block
            + stats.Marking.skipped_not_terminator
          in
          let region', _ = Identify.identify_with_stats img s in
          let (_ : int) = Region.selected_instructions region' in
          accounted = entries)
        snaps)

let test_marking_skips_alien_branches () =
  let img = loop_with_rare_arm () in
  let size = Image.size img in
  (* One real branch, two aliens: past the image and mid-block. *)
  let cfg = main_cfg img in
  let real = List.hd (branch_addrs cfg) in
  let region =
    Region.create img
      (snap [ entry 0 100 50; entry real 100 50; entry (size + 7) 100 50 ])
  in
  let stats = Marking.mark_with_stats region in
  Alcotest.(check int) "marked" 1 stats.Marking.marked;
  Alcotest.(check int) "alien skipped" 1 stats.Marking.skipped_no_symbol;
  Alcotest.(check int) "non-terminator skipped" 1
    (stats.Marking.skipped_not_terminator + stats.Marking.skipped_no_block)

let () =
  Alcotest.run "vp_region"
    [
      ( "marking",
        [
          Alcotest.test_case "blocks and arcs" `Quick test_marking_sets_block_and_arcs;
          Alcotest.test_case "weight threshold rule" `Quick
            test_marking_weight_threshold_rule;
          Alcotest.test_case "skips alien branches" `Quick
            test_marking_skips_alien_branches;
          QCheck_alcotest.to_alcotest prop_marking_total_on_adversarial;
        ] );
      ( "inference",
        [
          Alcotest.test_case "propagates" `Quick test_inference_propagates;
          Alcotest.test_case "idempotent" `Quick test_inference_idempotent;
          Alcotest.test_case "off skips branch blocks" `Quick
            test_inference_off_skips_branch_blocks;
          Alcotest.test_case "call rule" `Quick test_call_rule_pulls_callee;
          QCheck_alcotest.to_alcotest prop_inference_no_conflicts;
        ] );
      ( "growth",
        [
          Alcotest.test_case "unknown arc adoption" `Quick test_growth_unknown_arc_adoption;
          Alcotest.test_case "adds predecessor" `Quick test_growth_adds_predecessor;
          Alcotest.test_case "respects budget" `Quick test_growth_respects_budget;
        ] );
      ( "identify",
        [
          Alcotest.test_case "end to end" `Quick test_identify_end_to_end;
        ] );
    ]
