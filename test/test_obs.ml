(* The observability layer: span/counter semantics, ring wrap-around,
   zero-cost disabled paths, trace schema roundtrips, and the
   determinism contract across engine schedules. *)

module Obs = Vp_obs
module Program = Vp_prog.Program
module Gen = Vp_test_support.Gen
module Engine = Vacuum.Engine

(* --- counters --- *)

let test_counter_basics () =
  let t = Obs.create () in
  let a = Obs.Counter.register t "a" in
  let a' = Obs.Counter.register t "a" in
  Obs.Counter.incr t a;
  Obs.Counter.add t a' 4;
  Alcotest.(check int) "register is idempotent" 5 (Obs.Counter.value t a);
  Obs.Counter.bump t "a" 10;
  Obs.Counter.bump t "b" 2;
  Obs.Counter.bump t "zero" 0;
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("a", 15); ("b", 2) ]
    (Obs.Sink.counters t)

let test_counter_disabled () =
  let t = Obs.disabled in
  let id = Obs.Counter.register t "ghost" in
  Obs.Counter.incr t id;
  Obs.Counter.add t id 100;
  Obs.Counter.bump t "ghost" 7;
  Alcotest.(check int) "disabled value is 0" 0 (Obs.Counter.value t id);
  Alcotest.(check (list (pair string int)))
    "disabled records nothing" [] (Obs.Sink.counters t)

let test_counter_bump_is_parallel_safe () =
  (* bump is the flush entry point for engine tasks: concurrent bumps
     of the same name from several domains must not lose updates. *)
  let t = Obs.create () in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Obs.Counter.bump t "shared" 1
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check (list (pair string int)))
    "no lost updates"
    [ ("shared", 4000) ]
    (Obs.Sink.counters t)

(* --- spans --- *)

let test_span_nesting () =
  let t = Obs.create () in
  let outer = Obs.Span.enter t "outer" in
  let inner = Obs.Span.enter t "inner" in
  Obs.Span.exit ~work:3 t inner;
  Obs.Span.exit ~work:7 t outer;
  match Obs.Sink.spans t with
  | [ a; b ] ->
    Alcotest.(check string) "inner completes first" "inner" a.Obs.name;
    Alcotest.(check int) "inner depth" 1 a.Obs.depth;
    Alcotest.(check int) "inner work" 3 a.Obs.work;
    Alcotest.(check string) "outer second" "outer" b.Obs.name;
    Alcotest.(check int) "outer depth" 0 b.Obs.depth;
    Alcotest.(check int) "outer work" 7 b.Obs.work;
    Alcotest.(check int) "seq dense" 1 b.Obs.seq
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_record () =
  let t = Obs.create () in
  let v = Obs.Span.record t "stage" ~work:(fun n -> n * 2) (fun () -> 21) in
  Alcotest.(check int) "result threads through unchanged" 21 v;
  match Obs.Sink.spans t with
  | [ s ] ->
    Alcotest.(check string) "name" "stage" s.Obs.name;
    Alcotest.(check int) "work from result" 42 s.Obs.work
  | _ -> Alcotest.fail "expected one span"

let test_span_record_exception_safe () =
  let t = Obs.create () in
  (try
     ignore
       (Obs.Span.record t "boom" (fun () -> raise Exit) : unit)
   with Exit -> ());
  (match Obs.Sink.spans t with
  | [ s ] ->
    Alcotest.(check string) "span still recorded" "boom" s.Obs.name;
    Alcotest.(check int) "failure work marker" (-1) s.Obs.work
  | _ -> Alcotest.fail "expected one span");
  (* The stack unwound: the next span is back at depth 0. *)
  let tok = Obs.Span.enter t "after" in
  Obs.Span.exit t tok;
  match Obs.Sink.spans t with
  | [ _; s ] -> Alcotest.(check int) "depth reset" 0 s.Obs.depth
  | _ -> Alcotest.fail "expected two spans"

let test_span_note () =
  let t = Obs.create () in
  Obs.Span.note t "ext" ~wall_s:1.5 ~work:99;
  match Obs.Sink.spans t with
  | [ s ] ->
    Alcotest.(check string) "name" "ext" s.Obs.name;
    Alcotest.(check (float 1e-9)) "wall" 1.5 s.Obs.wall_s;
    Alcotest.(check int) "work" 99 s.Obs.work;
    Alcotest.(check int) "depth 0" 0 s.Obs.depth
  | _ -> Alcotest.fail "expected one span"

let test_ring_wraparound () =
  let t = Obs.create ~span_capacity:4 () in
  for i = 0 to 9 do
    Obs.Span.note t (Printf.sprintf "s%d" i) ~wall_s:0.0 ~work:i
  done;
  Alcotest.(check int) "dropped count" 6 (Obs.Sink.dropped_spans t);
  let names = List.map (fun s -> s.Obs.name) (Obs.Sink.spans t) in
  Alcotest.(check (list string))
    "newest spans survive, oldest first"
    [ "s6"; "s7"; "s8"; "s9" ] names;
  let seqs = List.map (fun s -> s.Obs.seq) (Obs.Sink.spans t) in
  Alcotest.(check (list int))
    "seq keeps the global completion index" [ 6; 7; 8; 9 ] seqs

let test_disabled_spans_are_free () =
  let t = Obs.disabled in
  let tok = Obs.Span.enter t "never" in
  Alcotest.(check bool) "null token" true (tok == Obs.Span.null);
  Obs.Span.exit t tok;
  Obs.Span.note t "never" ~wall_s:1.0 ~work:1;
  Alcotest.(check (list (list string)))
    "nothing recorded" []
    (List.map (fun s -> [ s.Obs.name ]) (Obs.Sink.spans t))

(* The no-op guarantee the decoded core relies on: driving the span
   and counter entry points of a disabled recorder allocates nothing
   on the minor heap. *)
let test_disabled_zero_allocation () =
  let t = Obs.disabled in
  let id = Obs.Counter.register t "c" in
  (* Warm up so any one-time allocation is out of the measured loop. *)
  for _ = 1 to 10 do
    Obs.Span.exit ~work:1 t (Obs.Span.enter t "warm");
    Obs.Counter.incr t id
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let tok = Obs.Span.enter t "hot" in
    Obs.Counter.incr t id;
    Obs.Counter.add t id 2;
    Obs.Span.exit ~work:3 t tok
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "zero minor words" 0.0 delta

(* --- merge --- *)

let test_merge_into () =
  let src = Obs.create () in
  let dst = Obs.create () in
  Obs.Span.note src "a" ~wall_s:0.1 ~work:1;
  Obs.Counter.bump src "n" 5;
  Obs.Span.note dst "b" ~wall_s:0.2 ~work:2;
  Obs.Counter.bump dst "n" 3;
  Obs.Sink.merge_into ~dst src;
  Alcotest.(check (list string))
    "spans appended" [ "b"; "a" ]
    (List.map (fun s -> s.Obs.name) (Obs.Sink.spans dst));
  Alcotest.(check (list (pair string int)))
    "counters added by name"
    [ ("n", 8) ]
    (Obs.Sink.counters dst);
  Obs.Sink.merge_into ~dst Obs.disabled;
  Obs.Sink.merge_into ~dst:Obs.disabled src;
  Alcotest.(check int) "disabled merges are no-ops" 2
    (List.length (Obs.Sink.spans dst))

(* --- trace roundtrip --- *)

let test_trace_roundtrip () =
  let t = Obs.create () in
  Obs.Span.record t "stage \"one\"" (fun () -> ());
  Obs.Span.note t "stage2" ~wall_s:0.5 ~work:123;
  Obs.Counter.bump t "widgets" 9;
  let path = Filename.temp_file "vp_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Sink.write_trace t ~path;
      match Obs.Sink.validate_file ~path with
      | Ok n -> Alcotest.(check int) "meta + 2 spans + 1 counter" 4 n
      | Error e -> Alcotest.failf "trace did not validate: %s" e)

let test_validate_rejects_garbage () =
  let reject line =
    match Obs.Sink.validate_line line with
    | Ok () -> Alcotest.failf "accepted %S" line
    | Error _ -> ()
  in
  reject "";
  reject "not json";
  reject "{\"no\": \"type\"}";
  reject "{\"type\": \"span\", \"name\": \"x\"}";
  (* missing keys *)
  reject "{\"type\": \"mystery\", \"name\": \"x\"}";
  match
    Obs.Sink.validate_line
      "{\"type\": \"counter\", \"name\": \"x\", \"value\": 3}"
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a valid counter line: %s" e

let test_validate_file_requires_meta () =
  let path = Filename.temp_file "vp_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"type\": \"counter\", \"name\": \"x\", \"value\": 1}\n";
      close_out oc;
      match Obs.Sink.validate_file ~path with
      | Ok _ -> Alcotest.fail "accepted a trace without a meta line"
      | Error _ -> ())

(* --- pipeline integration --- *)

let tiny_config obs =
  Vacuum.Config.with_obs obs
    (Vacuum.Config.with_detector Vp_hsd.Config.tiny Vacuum.Config.default)

let test_driver_span_coverage () =
  let obs = Obs.create () in
  let config = tiny_config obs in
  let img = Program.layout (Gen.random_phased ~seed:3) in
  let p = Vacuum.Driver.profile ~config img in
  let r = Vacuum.Driver.rewrite_of_profile ~config p in
  ignore (Vacuum.Coverage.measure ~config r);
  let names = List.map (fun s -> s.Obs.name) (Obs.Sink.spans obs) in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (stage ^ " span present") true (List.mem stage names))
    [ "profile"; "regions"; "packages"; "link"; "emit"; "coverage" ];
  let profile_span =
    List.find (fun s -> s.Obs.name = "profile") (Obs.Sink.spans obs)
  in
  Alcotest.(check int)
    "profile span work is retired instructions"
    p.Vacuum.Driver.outcome.Vp_exec.Emulator.instructions profile_span.Obs.work;
  (* The stage tallies flushed somewhere. *)
  Alcotest.(check bool)
    "counters flushed" true
    (List.length (Obs.Sink.counters obs) > 0)

let test_observed_run_is_behaviour_preserving () =
  (* An enabled recorder must not change what the pipeline computes. *)
  let img = Program.layout (Gen.random_phased ~seed:11) in
  let run obs =
    let config = tiny_config obs in
    let p = Vacuum.Driver.profile ~config img in
    let r = Vacuum.Driver.rewrite_of_profile ~config p in
    let c = Vacuum.Coverage.measure ~config r in
    ( p.Vacuum.Driver.outcome,
      List.length r.Vacuum.Driver.packages,
      c.Vacuum.Coverage.coverage_pct )
  in
  let off = run Obs.disabled in
  let on_ = run (Obs.create ()) in
  Alcotest.(check bool) "identical results" true (off = on_)

(* The determinism contract: one enabled recorder shared by engine
   schedules at --jobs 1 and --jobs 4 yields the same per-name span
   summary and the same counter sums. *)
let test_engine_determinism_across_jobs () =
  let specs =
    List.map
      (fun seed ->
        {
          Engine.name = Printf.sprintf "gen%d" seed;
          load = (fun () -> Program.layout (Gen.random_phased ~seed));
        })
      [ 1; 2; 3 ]
  in
  let cells =
    [
      { Engine.key = "full"; config = tiny_config Obs.disabled };
      {
        Engine.key = "nolink";
        config =
          Vacuum.Config.with_detector Vp_hsd.Config.tiny
            (Vacuum.Config.experiment ~inference:true ~linking:false);
      };
    ]
  in
  let observe jobs =
    let obs = Obs.create () in
    let engine =
      Engine.create ~jobs
        ~profile_config:(tiny_config Obs.disabled)
        ~obs ()
    in
    Engine.run engine ~specs ~cells ();
    (Obs.Sink.summary obs, Obs.Sink.counters obs)
  in
  let seq_summary, seq_counters = observe 1 in
  let par_summary, par_counters = observe 4 in
  Alcotest.(check bool)
    "span summaries identical across schedules" true
    (seq_summary = par_summary);
  Alcotest.(check (list (pair string int)))
    "counter sums identical across schedules" seq_counters par_counters;
  Alcotest.(check bool)
    "summary covers every task" true
    (List.exists (fun (name, _, _) -> name = "profile:gen1") seq_summary)

let () =
  Alcotest.run "vp_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "disabled" `Quick test_counter_disabled;
          Alcotest.test_case "bump parallel safety" `Quick
            test_counter_bump_is_parallel_safe;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "record" `Quick test_span_record;
          Alcotest.test_case "record exception safety" `Quick
            test_span_record_exception_safe;
          Alcotest.test_case "note" `Quick test_span_note;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_spans_are_free;
          Alcotest.test_case "disabled zero allocation" `Quick
            test_disabled_zero_allocation;
        ] );
      ( "sink",
        [
          Alcotest.test_case "merge" `Quick test_merge_into;
          Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "validate rejects garbage" `Quick
            test_validate_rejects_garbage;
          Alcotest.test_case "validate requires meta" `Quick
            test_validate_file_requires_meta;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "driver span coverage" `Quick
            test_driver_span_coverage;
          Alcotest.test_case "observation preserves behaviour" `Quick
            test_observed_run_is_behaviour_preserving;
          Alcotest.test_case "engine determinism across --jobs" `Slow
            test_engine_determinism_across_jobs;
        ] );
    ]
