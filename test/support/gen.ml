module B = Vp_prog.Builder
module Op = Vp_isa.Op
module R = Vp_util.Rng

let arith_ops = [| Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor; Op.Slt |]

(* A few statements of random arithmetic over the given registers. *)
let arith rng fb regs =
  let n = Array.length regs in
  for _ = 1 to 2 + R.int rng 4 do
    let op = arith_ops.(R.int rng (Array.length arith_ops)) in
    let dst = regs.(R.int rng n) in
    let src = regs.(R.int rng n) in
    let operand =
      if R.bool rng 0.5 then B.V regs.(R.int rng n)
      else B.K (R.int_in rng (-40) 40)
    in
    B.alu fb op dst src operand;
    (* Keep values bounded so multiplies cannot run away. *)
    if op = Op.Mul then B.alu fb Op.And dst dst (B.K 0xFFFFF)
  done

let global_traffic rng fb ~base ~len regs =
  let n = Array.length regs in
  let addr = B.vreg fb in
  let v = regs.(R.int rng n) in
  B.alu fb Op.And addr regs.(R.int rng n) (B.K (len - 1));
  B.alu fb Op.Add addr addr (B.K base);
  if R.bool rng 0.5 then B.store fb v ~base:addr ~off:0
  else B.load fb v ~base:addr ~off:0

(* One structured element of a function body (no calls: those are
   emitted separately, at most one per function, to bound the dynamic
   blow-up of call chains under nested loops). *)
let rec element rng fb ~depth ~base ~len regs =
  match R.int rng (if depth > 0 then 4 else 3) with
  | 0 -> arith rng fb regs
  | 1 -> global_traffic rng fb ~base ~len regs
  | 2 ->
    let n = Array.length regs in
    let a = regs.(R.int rng n) in
    B.if_ fb
      ((if R.bool rng 0.5 then Op.Lt else Op.Ge), a, B.K (R.int_in rng (-10) 10))
      (fun () -> arith rng fb regs)
      (fun () -> arith rng fb regs)
  | _ ->
    (* Counted loop with a small constant bound. *)
    let i = B.vreg fb in
    B.for_ fb i ~from:(B.K 0) ~below:(B.K (2 + R.int rng 6)) (fun () ->
        element rng fb ~depth:(depth - 1) ~base ~len regs)

let call_element rng fb ~callees regs =
  match callees with
  | [] -> ()
  | _ ->
    let callee = List.nth callees (R.int rng (List.length callees)) in
    let n = Array.length regs in
    let d = B.vreg fb in
    B.li fb d (1 + R.int rng 3);
    let r = B.call fb callee [ regs.(R.int rng n); d ] in
    B.alu fb Op.Add regs.(R.int rng n) regs.(R.int rng n) (B.V r)

module S = Vp_hsd.Snapshot

(* Adversarial snapshots: hardware-plausible but hostile BBB contents
   for robustness property tests.  Entries stay ascending by pc (the
   documented invariant the hardware guarantees); everything else —
   emptiness, saturation, branches the program does not contain — is
   fair game. *)

let real_branch_pcs image =
  let acc = ref [] in
  Array.iteri
    (fun pc i -> if Vp_isa.Instr.is_cond_branch i then acc := pc :: !acc)
    image.Vp_prog.Image.code;
  List.rev !acc

let adversarial_snapshots ~seed image =
  let rng = R.create ~seed in
  let size = Vp_prog.Image.size image in
  let counter_max = 511 in
  let real = real_branch_pcs image in
  let snap id branches =
    let detected_at = 1000 * (id + 1) in
    { S.id; detected_at; ended_at = detected_at + 500 + R.int rng 5000; branches }
  in
  let entry pc =
    let executed = R.int rng (counter_max + 1) in
    { S.pc; executed; taken = (if executed = 0 then 0 else R.int rng (executed + 1)) }
  in
  let pick l = List.nth l (R.int rng (List.length l)) in
  let empty = snap 0 [] in
  let single =
    snap 1 (match real with [] -> [ entry 0 ] | _ -> [ entry (pick real) ])
  in
  let saturated =
    snap 2
      (List.map
         (fun pc -> { S.pc; executed = counter_max; taken = counter_max })
         (List.filteri (fun i _ -> i < 8) real))
  in
  (* Branches the program does not contain: past the image, and at
     addresses of non-branch instructions. *)
  let alien =
    snap 3
      (List.sort compare
         [
           entry (R.int rng (max 1 size));
           entry (size + 1 + R.int rng 64);
           entry (size + 100 + R.int rng 64);
         ]
      |> List.sort_uniq (fun (a : S.entry) b -> compare a.S.pc b.S.pc))
  in
  let mixed =
    let pcs =
      List.sort_uniq compare
        (List.filteri (fun i _ -> i mod 3 = R.int rng 3) real
        @ [ size + R.int rng 32 ])
    in
    snap 4
      (List.map
         (fun pc ->
           if R.bool rng 0.3 then { S.pc; executed = counter_max; taken = counter_max }
           else if R.bool rng 0.3 then { S.pc; executed = 0; taken = 0 }
           else entry pc)
         pcs)
  in
  [ empty; single; saturated; alien; mixed ]

let random_phased ~seed =
  let rng = R.create ~seed in
  let b = B.create () in
  let len = 64 in
  let base = B.global b ~words:len in
  let nfuncs = 2 + R.int rng 3 in
  let name i = Printf.sprintf "work%d" i in
  (* Define in reverse so callees exist textually; calls only go to
     higher indices (acyclic), plus optional self-recursion guarded by
     the depth argument. *)
  for i = nfuncs - 1 downto 0 do
    let self_recursive = R.bool rng 0.3 in
    let callees =
      List.filteri (fun j _ -> R.bool rng 0.5 && j > i)
        (List.init nfuncs (fun j -> j))
      |> List.map name
    in
    let rng_body = R.split rng in
    B.func b (name i) ~nargs:2 (fun fb args ->
        let x = args.(0) in
        let depth = args.(1) in
        let locals = Array.init 3 (fun _ -> B.vreg fb) in
        Array.iteri (fun k v -> B.li fb v ((k * 7) + 1)) locals;
        let regs = Array.append [| x |] locals in
        if self_recursive then
          B.when_ fb (Op.Gt, depth, B.K 0) (fun () ->
              let d' = B.vreg fb in
              B.alu fb Op.Sub d' depth (B.K 1);
              let r = B.call fb (name i) [ x; d' ] in
              B.alu fb Op.Xor x x (B.V r));
        for _ = 1 to 2 + R.int rng_body 3 do
          element rng_body fb ~depth:2 ~base ~len regs
        done;
        if R.bool rng_body 0.7 then call_element rng_body fb ~callees regs;
        B.ret fb (Some regs.(R.int rng_body (Array.length regs))));
    ignore rng_body
  done;
  let phase_a = name 0 in
  let phase_b = name (min 1 (nfuncs - 1)) in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let rounds = B.vreg fb in
      B.li fb acc 1;
      let na = 100 + R.int rng 300 in
      let nb = 100 + R.int rng 300 in
      B.for_ fb rounds ~from:(B.K 0) ~below:(B.K (2 + R.int rng 2)) (fun () ->
          let i = B.vreg fb in
          let d = B.vreg fb in
          B.li fb d 3;
          B.for_ fb i ~from:(B.K 0) ~below:(B.K na) (fun () ->
              let r = B.call fb phase_a [ acc; d ] in
              B.alu fb Op.Add acc acc (B.V r);
              B.alu fb Op.And acc acc (B.K 0xFFFFFF));
          B.for_ fb i ~from:(B.K 0) ~below:(B.K nb) (fun () ->
              let r = B.call fb phase_b [ i; d ] in
              B.alu fb Op.Xor acc acc (B.V r);
              B.alu fb Op.And acc acc (B.K 0xFFFFFF)));
      B.ret fb (Some acc);
      B.halt fb);
  B.program b ~entry:"main"

(* Valid-by-construction snapshot streams for merge-algebra
   properties: entries strictly ascending by pc, counters within the
   9-bit hardware range with taken <= executed, a sprinkling of
   saturated and zero entries so censoring paths are exercised. *)
let random_snapshots ~seed ~count =
  let rng = R.create ~seed in
  let counter_max = 511 in
  List.init count (fun id ->
      let nbranches = R.int rng 12 in
      let pc = ref (-1) in
      let branches =
        List.init nbranches (fun _ ->
            pc := !pc + 1 + R.int rng 40;
            let executed =
              if R.bool rng 0.15 then counter_max
              else if R.bool rng 0.1 then 0
              else R.int rng (counter_max + 1)
            in
            let taken = if executed = 0 then 0 else R.int rng (executed + 1) in
            { S.pc = !pc; executed; taken })
      in
      let detected_at = 1000 * id in
      {
        S.id;
        detected_at;
        ended_at = detected_at + 1 + R.int rng 5000;
        branches;
      })
