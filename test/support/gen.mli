(** Random phased-program generation for whole-pipeline fuzzing.

    Programs are structurally diverse — acyclic call graphs with
    optional self-recursion, nested counted loops, data-dependent
    diamonds, shared global state — and always terminate: loop bounds
    are constants and recursion carries an explicit decreasing depth
    argument.  A main driver alternates between two phase loops
    exercising different callees, so the Hot Spot Detector sees real
    phase behaviour. *)

val random_phased : seed:int -> Vp_prog.Program.t
(** Deterministic in [seed].  Dynamic size is bounded to a few hundred
    thousand instructions. *)

val adversarial_snapshots :
  seed:int -> Vp_prog.Image.t -> Vp_hsd.Snapshot.t list
(** Hostile-but-plausible BBB snapshots for robustness properties:
    an empty snapshot, a single branch, all counters saturated,
    branches the program does not contain, and a mixed one.  Entries
    are ascending by pc (the hardware invariant); deterministic in
    [seed]. *)

val random_snapshots :
  seed:int -> count:int -> Vp_hsd.Snapshot.t list
(** [count] structurally valid snapshots for merge-algebra and
    wire-format properties: entries strictly ascending by pc, counters
    in the 9-bit range with [taken <= executed], including saturated
    (511) and zero entries.  Deterministic in [seed]. *)
