(* Whole-pipeline fuzzing: random phased programs through profile ->
   identify -> package -> link -> optimize -> emit -> run, asserting
   architectural equivalence and structural sanity every time.  This
   is the strongest property in the suite: it composes every library
   and every optimization on programs nobody hand-tuned. *)

module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Emulator = Vp_exec.Emulator
module Gen = Vp_test_support.Gen

let config =
  Vacuum.Config.with_detector Vp_hsd.Config.tiny Vacuum.Config.default

let sinking_config =
  Vacuum.Config.with_opt Vp_opt.Opt.with_sinking config

let run_pipeline config img =
  let profile = Vacuum.Driver.profile ~config img in
  let r = Vacuum.Driver.rewrite_of_profile ~config profile in
  let c = Vacuum.Coverage.measure ~config r in
  (profile, r, c)

let check_seed ?(config = config) seed =
  let img = Program.layout (Gen.random_phased ~seed) in
  (match Image.validate img with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d: invalid image: %s" seed e);
  let original = Emulator.run img in
  if not original.Emulator.halted then
    Alcotest.failf "seed %d: original did not halt" seed;
  let _, r, c = run_pipeline config img in
  if not c.Vacuum.Coverage.equivalent then
    Alcotest.failf "seed %d: rewritten binary diverged (coverage %.1f%%)" seed
      c.Vacuum.Coverage.coverage_pct;
  (match Image.validate (Vacuum.Driver.rewritten_image r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d: invalid rewritten image: %s" seed e);
  (original, r, c)

let test_fuzz_equivalence () =
  for seed = 0 to 19 do
    ignore (check_seed seed)
  done

let test_fuzz_equivalence_with_sinking () =
  for seed = 20 to 31 do
    ignore (check_seed ~config:sinking_config seed)
  done

let test_fuzz_no_linking () =
  let no_link =
    Vacuum.Config.with_detector Vp_hsd.Config.tiny
      (Vacuum.Config.experiment ~inference:true ~linking:false)
  in
  for seed = 32 to 39 do
    ignore (check_seed ~config:no_link seed)
  done

let test_fuzz_structure () =
  (* Whenever packages exist, the structural invariants hold. *)
  for seed = 40 to 49 do
    let _, r, _ = check_seed seed in
    (* Both as built and as emitted (post-linking, post-transform). *)
    List.iter
      (fun p ->
        match Vp_package.Pkg.validate p with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d: %s: %s" seed p.Vp_package.Pkg.id e)
      (r.Vacuum.Driver.packages @ r.Vacuum.Driver.emitted.Vp_package.Emit.packages);
    List.iter
      (fun p ->
        (* Entries point at original addresses. *)
        List.iter
          (fun (_, addr) ->
            Alcotest.(check bool) "entry in original range" true
              (addr < r.Vacuum.Driver.source.Vacuum.Driver.image.Image.orig_limit))
          p.Vp_package.Pkg.entries;
        (* Sites' cold exits reference real blocks of the package. *)
        List.iter
          (fun (s : Vp_package.Pkg.site) ->
            match s.Vp_package.Pkg.cold_exit with
            | Some label ->
              Alcotest.(check bool) "cold exit exists" true
                (Vp_package.Pkg.find_block p label <> None)
            | None -> ())
          p.Vp_package.Pkg.sites)
      r.Vacuum.Driver.packages
  done

let test_fuzz_assembly_roundtrip () =
  (* Random phased programs survive the assembler roundtrip too. *)
  for seed = 50 to 57 do
    let p = Gen.random_phased ~seed in
    match Vp_prog.Asm.parse_program (Vp_prog.Asm.print_program p) with
    | Ok p' ->
      if p <> p' then Alcotest.failf "seed %d: assembly roundtrip differs" seed
    | Error e ->
      Alcotest.failf "seed %d: %s" seed (Format.asprintf "%a" Vp_prog.Asm.pp_error e)
  done

let test_generator_is_deterministic () =
  let a = Gen.random_phased ~seed:7 in
  let b = Gen.random_phased ~seed:7 in
  Alcotest.(check bool) "same program" true (a = b);
  let c = Gen.random_phased ~seed:8 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let () =
  Alcotest.run "vp_integration"
    [
      ( "fuzz",
        [
          Alcotest.test_case "generator determinism" `Quick test_generator_is_deterministic;
          Alcotest.test_case "pipeline equivalence" `Slow test_fuzz_equivalence;
          Alcotest.test_case "equivalence with sinking" `Slow
            test_fuzz_equivalence_with_sinking;
          Alcotest.test_case "equivalence without linking" `Slow test_fuzz_no_linking;
          Alcotest.test_case "package structure" `Slow test_fuzz_structure;
          Alcotest.test_case "assembly roundtrip" `Slow test_fuzz_assembly_roundtrip;
        ] );
    ]
