(* Tests for vp_phase: similarity criteria, redundant-snapshot
   filtering into phases, and Figure 9 branch categorisation. *)

module Snapshot = Vp_hsd.Snapshot
module Similarity = Vp_phase.Similarity
module Phase_log = Vp_phase.Phase_log
module Categorize = Vp_phase.Categorize

let entry pc executed taken = { Snapshot.pc; executed; taken }

let snap ?(id = 0) ?(at = 0) ?(until = 1000) branches =
  { Snapshot.id; detected_at = at; ended_at = until; branches }

let test_identical_same () =
  let a = snap [ entry 10 100 90; entry 20 100 10 ] in
  Alcotest.(check bool) "identical" true (Similarity.same a a)

let test_disjoint_different () =
  let a = snap [ entry 10 100 90 ] in
  let b = snap [ entry 99 100 90 ] in
  Alcotest.(check bool) "disjoint" false (Similarity.same a b)

let test_missing_fraction_boundary () =
  (* 10 branches in a; b misses exactly 3 of them: 30% missing means
     different (the paper's "30% or more"). *)
  let mk n = List.init n (fun i -> entry (10 * (i + 1)) 100 50) in
  let a = snap (mk 10) in
  let b = snap (mk 7) in
  Alcotest.(check (float 1e-9)) "fraction" 0.3 (Similarity.missing_fraction a b);
  Alcotest.(check bool) "30%% missing differs" false (Similarity.same a b);
  (* 2 of 10 missing: same phase. *)
  let c = snap (mk 8) in
  Alcotest.(check bool) "20%% missing same" true (Similarity.same a c)

let test_asymmetric_missing () =
  (* b has many extra branches: a's branches all present in b, but
     most of b's are missing from a. *)
  let a = snap [ entry 10 100 50; entry 20 100 50 ] in
  let b = snap (List.init 10 (fun i -> entry (10 * (i + 1)) 100 50)) in
  Alcotest.(check (float 1e-9)) "a covered" 0.0 (Similarity.missing_fraction a b);
  Alcotest.(check bool) "different by reverse direction" false (Similarity.same a b)

let test_bias_flip_different () =
  let a = snap [ entry 10 100 95; entry 20 100 50 ] in
  let b = snap [ entry 10 100 5; entry 20 100 50 ] in
  Alcotest.(check int) "one flip" 1 (Similarity.bias_flips a b);
  Alcotest.(check bool) "flip differs" false (Similarity.same a b);
  (* Tolerating one flip makes them the same. *)
  let lax = { Similarity.default with Similarity.max_bias_flips = 1 } in
  Alcotest.(check bool) "lax same" true (Similarity.same ~config:lax a b)

let test_unbiased_swing_not_flip () =
  (* Moving between unbiased and biased is not a flip. *)
  let a = snap [ entry 10 100 95 ] in
  let b = snap [ entry 10 100 60 ] in
  Alcotest.(check int) "no flip" 0 (Similarity.bias_flips a b);
  Alcotest.(check bool) "same" true (Similarity.same a b)

let test_degenerate_snapshots () =
  (* The lenient contract: every similarity primitive is total on
     empty and singleton snapshots — a lossy hardware stream must
     never crash the comparison. *)
  let e = snap [] in
  let a = snap [ entry 10 100 90 ] in
  Alcotest.(check (float 1e-9)) "empty misses nothing" 0.0
    (Similarity.missing_fraction e a);
  Alcotest.(check (float 1e-9)) "all missing from empty" 1.0
    (Similarity.missing_fraction a e);
  Alcotest.(check int) "no flips vs empty" 0 (Similarity.bias_flips e a);
  Alcotest.(check bool) "empty same as empty" true (Similarity.same e e);
  Alcotest.(check bool) "empty differs from non-empty" false
    (Similarity.same e a);
  Alcotest.(check bool) "singleton same as itself" true (Similarity.same a a)

let test_score_degenerate_and_bounds () =
  let e = snap [] in
  let a = snap [ entry 10 100 90; entry 20 50 10 ] in
  let b = snap [ entry 99 100 90 ] in
  Alcotest.(check (float 1e-9)) "empty vs empty" 1.0 (Similarity.score e e);
  Alcotest.(check (float 1e-9)) "empty vs non-empty" 0.0 (Similarity.score e a);
  Alcotest.(check (float 1e-9)) "identical" 1.0 (Similarity.score a a);
  Alcotest.(check (float 1e-9)) "disjoint" 0.0 (Similarity.score a b);
  let c = snap [ entry 10 50 45 ] in
  let s = Similarity.score a c in
  Alcotest.(check bool) "partial overlap lands strictly between" true
    (s > 0.0 && s < 1.0);
  Alcotest.(check (float 1e-9)) "symmetric" s (Similarity.score c a)

let prop_score_total_and_bounded =
  QCheck.Test.make ~name:"score total and in [0,1] on adversarial snapshots"
    ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let image =
        Vp_prog.Program.layout
          (Vp_test_support.Gen.random_phased ~seed:(seed land 0xFF))
      in
      let snaps = Vp_test_support.Gen.adversarial_snapshots ~seed image in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let s = Similarity.score a b in
              s >= 0.0 && s <= 1.0
              && abs_float (s -. Similarity.score b a) < 1e-9)
            snaps)
        snaps)

let phase_a id at = snap ~id ~at ~until:(at + 100) [ entry 10 100 90; entry 20 100 10 ]
let phase_b id at = snap ~id ~at ~until:(at + 100) [ entry 50 100 90; entry 60 100 10 ]

let test_phase_log_grouping () =
  let log =
    Phase_log.build
      [ phase_a 0 0; phase_a 1 100; phase_b 2 200; phase_a 3 300; phase_b 4 400 ]
  in
  Alcotest.(check int) "raw" 5 (Phase_log.raw_count log);
  Alcotest.(check int) "unique" 2 (Phase_log.unique_count log);
  let phases = Phase_log.phases log in
  Alcotest.(check int) "phase 0 occurrences" 3
    (List.length (List.nth phases 0).Phase_log.occurrences);
  Alcotest.(check int) "phase 1 occurrences" 2
    (List.length (List.nth phases 1).Phase_log.occurrences)

let test_phase_log_timeline () =
  let log =
    Phase_log.build [ phase_a 0 0; phase_a 1 100; phase_b 2 200; phase_a 3 300 ]
  in
  let tl = Phase_log.timeline log in
  (* Adjacent same-phase intervals merge: AABA -> A B A. *)
  Alcotest.(check (list (triple int int int))) "merged timeline"
    [ (0, 200, 0); (200, 300, 1); (300, 400, 0) ]
    tl;
  Alcotest.(check int) "transitions" 2 (Phase_log.transitions log)

let test_phase_log_extent () =
  let log = Phase_log.build [ phase_a 0 0; phase_a 1 100 ] in
  let p = List.hd (Phase_log.phases log) in
  Alcotest.(check int) "extent sums occurrences" 200 (Phase_log.extent p)

let test_phase_log_empty () =
  let log = Phase_log.build [] in
  Alcotest.(check int) "no phases" 0 (Phase_log.unique_count log);
  Alcotest.(check int) "no transitions" 0 (Phase_log.transitions log)

let test_categorize_single () =
  Alcotest.(check string) "unique biased" "unique biased"
    (Categorize.category_name (Categorize.of_branch [ 0.95 ]));
  Alcotest.(check string) "unique biased low" "unique biased"
    (Categorize.category_name (Categorize.of_branch [ 0.02 ]));
  Alcotest.(check string) "unique unbiased" "unique unbiased"
    (Categorize.category_name (Categorize.of_branch [ 0.5 ]))

let test_categorize_multi () =
  let name fs = Categorize.category_name (Categorize.of_branch fs) in
  Alcotest.(check string) "high swing" "multi high" (name [ 0.95; 0.05 ]);
  Alcotest.(check string) "low swing" "multi low" (name [ 0.95; 0.45 ]);
  Alcotest.(check string) "same" "multi same" (name [ 0.95; 0.92 ]);
  Alcotest.(check string) "no bias" "multi no bias" (name [ 0.5; 0.6 ])

let test_classify_across_phases () =
  (* Branch 10 appears in both phases with flipped bias; branch 20 in
     one phase only. *)
  let a = snap ~id:0 [ entry 10 100 95; entry 20 100 90 ] in
  let b = snap ~id:1 ~at:1000 ~until:2000 [ entry 10 100 5; entry 99 100 50 ] in
  let log = Phase_log.build [ a; b ] in
  Alcotest.(check int) "two phases" 2 (Phase_log.unique_count log);
  let classes = Categorize.classify log in
  let find pc = List.assoc pc classes in
  Alcotest.(check string) "10 multi high" "multi high"
    (Categorize.category_name (find 10));
  Alcotest.(check string) "20 unique biased" "unique biased"
    (Categorize.category_name (find 20));
  Alcotest.(check string) "99 unique unbiased" "unique unbiased"
    (Categorize.category_name (find 99))

let test_weighted_sums_to_100 () =
  let a = snap ~id:0 [ entry 10 100 95 ] in
  let b = snap ~id:1 ~at:1000 ~until:2000 [ entry 10 100 5 ] in
  let log = Phase_log.build [ a; b ] in
  let executed = Array.make 64 0 and takens = Array.make 64 0 in
  executed.(10) <- 700;
  takens.(10) <- 350;
  (* 42 never appeared in a hot spot. *)
  executed.(42) <- 300;
  takens.(42) <- 10;
  let dynamic = Vp_exec.Branch_profile.of_counts ~executed ~takens in
  let ws = Categorize.weighted log ~dynamic in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 ws in
  Alcotest.(check (float 1e-6)) "sums to 100" 100.0 total;
  Alcotest.(check (float 1e-6)) "multi high weight" 70.0
    (List.assoc Categorize.Multi_high ws);
  Alcotest.(check (float 1e-6)) "uncaptured weight" 30.0
    (List.assoc Categorize.Uncaptured ws)

(* Property: phase-log grouping never loses snapshots, and every class
   member matches its representative. *)
let prop_phase_log_partition =
  QCheck.Test.make ~name:"phase log partitions recordings" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 20) (int_bound 3))
    (fun choices ->
      let mk i choice =
        snap ~id:i ~at:(i * 100) ~until:((i + 1) * 100)
          [ entry (1000 * (choice + 1)) 100 90; entry ((1000 * (choice + 1)) + 1) 100 20 ]
      in
      let snaps = List.mapi mk choices in
      let log = Phase_log.build snaps in
      let total_members =
        List.fold_left
          (fun acc p -> acc + List.length p.Phase_log.occurrences)
          0 (Phase_log.phases log)
      in
      total_members = List.length snaps
      && Phase_log.unique_count log
         = List.length (List.sort_uniq compare choices))

(* Robustness: similarity and phase-log building are total over
   adversarial snapshots — empty, saturated, or naming branches the
   program does not contain.  A lossy hardware profile must never
   crash the software side. *)
let prop_similarity_total_on_adversarial =
  QCheck.Test.make ~name:"similarity total on adversarial snapshots" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let image =
        Vp_prog.Program.layout
          (Vp_test_support.Gen.random_phased ~seed:(seed land 0xFF))
      in
      let snaps = Vp_test_support.Gen.adversarial_snapshots ~seed image in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let (_ : bool) = Similarity.same a b in
              true)
            snaps)
        snaps
      &&
      let log = Phase_log.build snaps in
      let (_ : int) = Phase_log.unique_count log in
      true)

let () =
  Alcotest.run "vp_phase"
    [
      ( "similarity",
        [
          Alcotest.test_case "identical" `Quick test_identical_same;
          Alcotest.test_case "disjoint" `Quick test_disjoint_different;
          Alcotest.test_case "missing boundary" `Quick test_missing_fraction_boundary;
          Alcotest.test_case "asymmetric missing" `Quick test_asymmetric_missing;
          Alcotest.test_case "bias flip" `Quick test_bias_flip_different;
          Alcotest.test_case "unbiased swing" `Quick test_unbiased_swing_not_flip;
          Alcotest.test_case "degenerate snapshots" `Quick test_degenerate_snapshots;
          Alcotest.test_case "score degenerate" `Quick test_score_degenerate_and_bounds;
          QCheck_alcotest.to_alcotest prop_similarity_total_on_adversarial;
          QCheck_alcotest.to_alcotest prop_score_total_and_bounded;
        ] );
      ( "phase_log",
        [
          Alcotest.test_case "grouping" `Quick test_phase_log_grouping;
          Alcotest.test_case "timeline" `Quick test_phase_log_timeline;
          Alcotest.test_case "extent" `Quick test_phase_log_extent;
          Alcotest.test_case "empty" `Quick test_phase_log_empty;
          QCheck_alcotest.to_alcotest prop_phase_log_partition;
        ] );
      ( "categorize",
        [
          Alcotest.test_case "single" `Quick test_categorize_single;
          Alcotest.test_case "multi" `Quick test_categorize_multi;
          Alcotest.test_case "across phases" `Quick test_classify_across_phases;
          Alcotest.test_case "weighted" `Quick test_weighted_sums_to_100;
        ] );
    ]
