(* The runtime telemetry layer: series/event storage, disabled no-op
   and allocation contracts, trace schema roundtrips, rendering, the
   detector/driver/coverage wiring, and byte-identical traces across
   engine schedules. *)

module T = Vp_telemetry
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Gen = Vp_test_support.Gen
module Progs = Vp_test_support.Progs
module Engine = Vacuum.Engine

(* --- series and events --- *)

let test_series_basics () =
  let t = T.create (T.on ~interval:100 ()) in
  Alcotest.(check bool) "enabled" true (T.enabled t);
  Alcotest.(check int) "interval" 100 (T.interval_length t);
  let a = T.Series.register t "a" in
  let a' = T.Series.register t "a" in
  let b = T.Series.register t "b" in
  Alcotest.(check bool) "register idempotent" true (a = a');
  for i = 1 to 600 do
    T.Series.push t a i
  done;
  T.Series.push t b 7;
  Alcotest.(check int) "growth past preallocation" 600 (T.Series.length t a);
  Alcotest.(check int) "independent series" 1 (T.Series.length t b);
  Alcotest.(check int) "intervals = longest series" 600 (T.intervals t);
  let v = T.Series.values t a in
  Alcotest.(check int) "first value" 1 v.(0);
  Alcotest.(check int) "last value" 600 v.(599);
  Alcotest.(check (list string)) "names sorted" [ "a"; "b" ] (T.Series.names t);
  Alcotest.(check bool) "find" true (T.Series.find t "b" = Some [| 7 |]);
  Alcotest.(check bool) "find missing" true (T.Series.find t "c" = None)

let test_event_basics () =
  let t = T.create (T.on ()) in
  T.Event.emit t ~kind:"detect" ~at:10 ~value:1;
  T.Event.emit t ~kind:"record" ~at:10 ~value:0;
  T.Event.emit t ~kind:"detect" ~at:25 ~value:2;
  Alcotest.(check int) "count by kind" 2 (T.Event.count t ~kind:"detect");
  Alcotest.(check bool)
    "emission order" true
    (T.Event.all t
    = [ ("detect", 10, 1); ("record", 10, 0); ("detect", 25, 2) ]);
  Alcotest.(check bool)
    "event_counts sorted" true
    (T.Sink.event_counts t = [ ("detect", 2); ("record", 1) ])

let test_disabled_noop () =
  let t = T.create T.off in
  Alcotest.(check bool) "create off = disabled" true (t == T.disabled);
  let id = T.Series.register t "ghost" in
  T.Series.push t id 1;
  T.Event.emit t ~kind:"ghost" ~at:0 ~value:0;
  Alcotest.(check int) "no length" 0 (T.Series.length t id);
  Alcotest.(check (list string)) "no names" [] (T.Series.names t);
  Alcotest.(check bool) "no events" true (T.Event.all t = []);
  Alcotest.(check bool) "no summary" true (T.Sink.summary t = []);
  Alcotest.(check int) "no intervals" 0 (T.intervals t)

let test_disabled_zero_allocation () =
  let t = T.disabled in
  let id = T.Series.register t "x" in
  (* Warm up. *)
  T.Series.push t id 1;
  let before = Gc.minor_words () in
  for i = 0 to 99_999 do
    T.Series.push t id i
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "100k disabled pushes allocate nothing (%.0f words)" words)
    true (words < 256.)

let test_bad_interval_rejected () =
  match T.create { T.enabled = true; interval = 0 } with
  | exception Vp_util.Error.Error _ -> ()
  | _ -> Alcotest.fail "interval 0 accepted"

let test_summary () =
  let t = T.create (T.on ()) in
  let a = T.Series.register t "a" in
  List.iter (T.Series.push t a) [ 3; 1; 2 ];
  Alcotest.(check bool)
    "name, samples, min, max, total" true
    (T.Sink.summary t = [ ("a", 3, 1, 3, 6) ])

(* --- trace schema --- *)

let in_temp name f =
  let path = Filename.temp_file "vp_telemetry" name in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_trace_roundtrip () =
  in_temp "trace.jsonl" @@ fun path ->
  let t1 = T.create (T.on ~interval:50 ()) in
  let a = T.Series.register t1 "profile.hdc" in
  List.iter (T.Series.push t1 a) [ 4; 0; 9 ];
  T.Event.emit t1 ~kind:"detect" ~at:120 ~value:1;
  let t2 = T.create (T.on ~interval:50 ()) in
  let b = T.Series.register t2 "run.orig.instructions" in
  List.iter (T.Series.push t2 b) [ 50; 50 ];
  (* Disabled timelines merge away silently. *)
  T.Sink.write_trace ~path [ t1; T.disabled; t2 ];
  (match T.Sink.validate_file ~path with
  | Ok n -> Alcotest.(check int) "meta + 2 series + 1 event" 4 n
  | Error e -> Alcotest.failf "trace invalid: %s" e);
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check bool)
    "meta carries the shared interval" true
    (T.Sink.validate_line first = Ok ());
  Alcotest.(check bool)
    "meta first" true
    (String.length first > 16 && String.sub first 0 16 = {|{"type": "meta",|})

let test_validator_rejects_garbage () =
  List.iter
    (fun (line, why) ->
      match T.Sink.validate_line line with
      | Ok () -> Alcotest.failf "accepted %s" why
      | Error _ -> ())
    [
      ("not json", "plain text");
      ("{\"no\": \"type\"}", "an object without a type tag");
      ("{\"type\": \"mystery\"}", "an unknown record type");
      ("{\"type\": \"series\", \"name\": \"x\"}", "a series without values");
      ("{\"type\": \"event\", \"kind\": \"k\", \"at\": 1}", "an event without value");
    ]

let test_validator_rejects_foreign_schema () =
  in_temp "foreign.jsonl" @@ fun path ->
  let oc = open_out path in
  output_string oc
    "{\"type\": \"meta\", \"schema\": \"vp-obs-trace/1\", \"interval\": 1, \
     \"intervals\": 0}\n";
  close_out oc;
  (match T.Sink.validate_file ~path with
  | Ok _ -> Alcotest.fail "accepted a vp-obs-trace file"
  | Error _ -> ());
  let oc = open_out path in
  output_string oc "";
  close_out oc;
  match T.Sink.validate_file ~path with
  | Ok _ -> Alcotest.fail "accepted an empty file"
  | Error _ -> ()

(* --- rendering --- *)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (T.Render.sparkline [||]);
  let s = T.Render.sparkline ~width:4 [| 0; 1; 4; 8 |] in
  Alcotest.(check int) "width respected" 4 (String.length s);
  Alcotest.(check char) "zero is blank" ' ' s.[0];
  Alcotest.(check char) "max is densest" '#' s.[3];
  Alcotest.(check bool) "nonzero is visible" true (s.[1] <> ' ');
  (* Narrower than the data: max-pooling keeps the peak visible. *)
  let pooled = T.Render.sparkline ~width:2 [| 0; 0; 0; 9 |] in
  Alcotest.(check char) "pooled peak survives" '#' pooled.[1]

let test_lane () =
  let total = [| 100; 100; 100; 100 |] in
  let s = T.Render.lane ~width:4 ~total [| 0; 3; 60; 95 |] in
  Alcotest.(check string) "thresholded glyphs" " .O#" s

let test_extent_rows () =
  (* Two intervals of 10 branches each; phase 1 spans the first,
     phase 2 the second. *)
  let cum = [| 10; 20 |] in
  let rows =
    T.Render.extent_rows ~width:2 ~cum [ (0, 10, 1); (10, 20, 2) ]
  in
  Alcotest.(check bool)
    "one row per phase, marking its own columns" true
    (rows = [ (1, "= "); (2, " =") ])

(* --- detector hooks --- *)

let test_detector_hooks_match_counters () =
  let img = Program.layout (Gen.random_phased ~seed:5) in
  let d =
    Vp_hsd.Detector.create ~config:Vp_hsd.Config.tiny
      ~same:Vp_phase.Similarity.same ()
  in
  let detects = ref 0 and records = ref [] and rearms = ref 0 in
  Vp_hsd.Detector.set_hooks d
    ~on_detect:(fun ~branches:_ ~detections:_ -> incr detects)
    ~on_record:(fun ~branches ~id -> records := (branches, id) :: !records)
    ~on_rearm:(fun ~branches:_ ~rearms:_ -> incr rearms);
  let (_ : Emulator.outcome) =
    Emulator.run
      ~on_branch:(fun ~pc ~taken -> Vp_hsd.Detector.on_branch d ~pc ~taken)
      img
  in
  Alcotest.(check int) "detect hook = detections" (Vp_hsd.Detector.detections d)
    !detects;
  Alcotest.(check int) "rearm hook = rearms" (Vp_hsd.Detector.rearms d) !rearms;
  let records = List.rev !records in
  Alcotest.(check int)
    "record hook = recordings"
    (Vp_hsd.Detector.recordings d)
    (List.length records);
  Alcotest.(check bool) "something detected" true (!detects > 0);
  (* Each record stamp equals the snapshot's detected_at, in order. *)
  List.iter2
    (fun (branches, id) (snap : Vp_hsd.Snapshot.t) ->
      Alcotest.(check int) "stamp = detected_at" snap.Vp_hsd.Snapshot.detected_at
        branches;
      Alcotest.(check int) "id in recording order" snap.Vp_hsd.Snapshot.id id)
    records
    (Vp_hsd.Detector.snapshots d)

(* --- pipeline wiring --- *)

let telemetry_config =
  Vacuum.Config.with_telemetry
    (T.on ~interval:1_000 ())
    (Vacuum.Config.with_detector Vp_hsd.Config.tiny Vacuum.Config.default)

let test_profile_timeline () =
  let img = Program.layout (Gen.random_phased ~seed:7) in
  let p = Vacuum.Driver.profile ~config:telemetry_config img in
  let tl = p.Vacuum.Driver.timeline in
  Alcotest.(check bool) "timeline enabled" true (T.enabled tl);
  let instrs = Option.get (T.Series.find tl "profile.instructions") in
  Alcotest.(check int)
    "interval series integrate to the run length"
    p.Vacuum.Driver.outcome.Emulator.instructions
    (Array.fold_left ( + ) 0 instrs);
  let branches = Option.get (T.Series.find tl "profile.branches") in
  Alcotest.(check int)
    "branch series integrates to retired branches"
    p.Vacuum.Driver.outcome.Emulator.cond_branches
    (Array.fold_left ( + ) 0 branches);
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " sampled every interval")
        (Array.length instrs)
        (Array.length (Option.get (T.Series.find tl name))))
    [ "profile.hdc"; "profile.bbb_occupancy"; "profile.bbb_candidates" ];
  Alcotest.(check int)
    "record events = recordings"
    (List.length p.Vacuum.Driver.snapshots)
    (T.Event.count tl ~kind:"record")

let test_profile_disabled_by_default () =
  let img = Program.layout (Gen.random_phased ~seed:7) in
  let config =
    Vacuum.Config.with_detector Vp_hsd.Config.tiny Vacuum.Config.default
  in
  let p = Vacuum.Driver.profile ~config img in
  Alcotest.(check bool)
    "default profile carries the disabled timeline" false
    (T.enabled p.Vacuum.Driver.timeline)

let test_telemetry_is_behaviour_preserving () =
  (* Sampling must not change what the pipeline computes. *)
  let img = Program.layout (Gen.random_phased ~seed:11) in
  let run config =
    let p = Vacuum.Driver.profile ~config img in
    let r = Vacuum.Driver.rewrite_of_profile ~config p in
    let c = Vacuum.Coverage.measure ~config r in
    ( p.Vacuum.Driver.outcome,
      List.length r.Vacuum.Driver.packages,
      c.Vacuum.Coverage.coverage_pct,
      c.Vacuum.Coverage.equivalent )
  in
  let off =
    run (Vacuum.Config.with_detector Vp_hsd.Config.tiny Vacuum.Config.default)
  in
  let on_ = run telemetry_config in
  Alcotest.(check bool) "identical results" true (off = on_)

let test_residency_integrates_to_coverage () =
  let img = Program.layout (Gen.random_phased ~seed:3) in
  let config = telemetry_config in
  let r = Vacuum.Driver.rewrite ~config img in
  let c = Vacuum.Coverage.measure ~config r in
  let res = c.Vacuum.Coverage.residency in
  let total series_name =
    match T.Series.find res series_name with
    | Some v -> Array.fold_left ( + ) 0 v
    | None -> Alcotest.failf "missing series %s" series_name
  in
  Alcotest.(check int)
    "run.instructions integrates to the rewritten run"
    c.Vacuum.Coverage.outcome.Emulator.instructions (total "run.instructions");
  let pkg_sum =
    List.fold_left
      (fun acc name ->
        if name = "run.instructions" || name = "run.orig.instructions" then acc
        else acc + total name)
      0 (T.Series.names res)
  in
  Alcotest.(check int)
    "package lanes integrate to the Figure 8 numerator"
    c.Vacuum.Coverage.outcome.Emulator.package_instructions pkg_sum;
  Alcotest.(check int)
    "lanes partition the run"
    c.Vacuum.Coverage.outcome.Emulator.instructions
    (pkg_sum + total "run.orig.instructions")

let test_timing_series () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:500 ~repeats:2) in
  let tl = T.create (T.on ~interval:1_000 ()) in
  let stats = Vp_cpu.Pipeline.simulate ~telemetry:tl img in
  let sum name =
    Array.fold_left ( + ) 0 (Option.get (T.Series.find tl name))
  in
  Alcotest.(check int) "instruction deltas integrate"
    stats.Vp_cpu.Pipeline.instructions (sum "timing.instructions");
  Alcotest.(check int) "cycle deltas integrate" stats.Vp_cpu.Pipeline.cycles
    (sum "timing.cycles");
  Alcotest.(check int) "icache deltas integrate"
    stats.Vp_cpu.Pipeline.icache_misses
    (sum "timing.icache_misses");
  Alcotest.(check int) "mispredict deltas integrate"
    stats.Vp_cpu.Pipeline.branch_mispredicts
    (sum "timing.mispredicts")

(* --- determinism across engine schedules --- *)

let test_traces_identical_across_jobs () =
  let specs =
    List.map
      (fun seed ->
        {
          Engine.name = Printf.sprintf "gen%d" seed;
          load = (fun () -> Program.layout (Gen.random_phased ~seed));
        })
      [ 1; 2; 3; 4 ]
  in
  let cells = [ { Engine.key = "full"; config = telemetry_config } ] in
  let trace_of jobs path =
    let engine = Engine.create ~jobs ~profile_config:telemetry_config () in
    Engine.run engine ~specs ~cells ();
    let tls =
      List.concat_map
        (fun spec ->
          [
            (Engine.profile engine spec).Vacuum.Driver.timeline;
            (Engine.coverage engine spec (List.hd cells))
              .Vacuum.Coverage.residency;
          ])
        specs
    in
    T.Sink.write_trace ~path tls
  in
  in_temp "seq.jsonl" @@ fun seq ->
  in_temp "par.jsonl" @@ fun par ->
  trace_of 1 seq;
  trace_of 4 par;
  let read path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let a = read seq and b = read par in
  Alcotest.(check bool) "traces non-trivial" true (String.length a > 100);
  Alcotest.(check bool) "byte-identical across --jobs 1 and 4" true (a = b)

let () =
  Alcotest.run "vp_telemetry"
    [
      ( "storage",
        [
          Alcotest.test_case "series basics" `Quick test_series_basics;
          Alcotest.test_case "event basics" `Quick test_event_basics;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "disabled zero allocation" `Quick
            test_disabled_zero_allocation;
          Alcotest.test_case "bad interval rejected" `Quick
            test_bad_interval_rejected;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_validator_rejects_garbage;
          Alcotest.test_case "rejects foreign schema" `Quick
            test_validator_rejects_foreign_schema;
        ] );
      ( "render",
        [
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "lane" `Quick test_lane;
          Alcotest.test_case "extent rows" `Quick test_extent_rows;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "detector hooks" `Quick
            test_detector_hooks_match_counters;
          Alcotest.test_case "profile timeline" `Quick test_profile_timeline;
          Alcotest.test_case "disabled by default" `Quick
            test_profile_disabled_by_default;
          Alcotest.test_case "behaviour preserving" `Quick
            test_telemetry_is_behaviour_preserving;
          Alcotest.test_case "residency integrates to coverage" `Quick
            test_residency_integrates_to_coverage;
          Alcotest.test_case "timing series" `Quick test_timing_series;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "traces identical across --jobs" `Slow
            test_traces_identical_across_jobs;
        ] );
    ]
