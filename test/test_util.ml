(* Tests for vp_util: PRNG determinism, saturating counters, stats,
   table rendering, and the domain pool. *)

module Rng = Vp_util.Rng
module Counter = Vp_util.Counter
module Stats = Vp_util.Stats
module Tabular = Vp_util.Tabular
module Pool = Vp_util.Pool

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_rng_determinism () =
  let a = Rng.create ~seed:42 in
  let b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_different_seeds () =
  let a = Rng.create ~seed:1 in
  let b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 5)

let test_rng_copy () =
  let a = Rng.create ~seed:7 in
  let _ = Rng.next a in
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.next a) (Rng.next b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true (Rng.next a <> Rng.next b)

let test_rng_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10);
    let w = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (w >= -5 && w <= 5);
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_bool_probability () =
  let r = Rng.create ~seed:11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bool r 0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p close to 0.3" true (abs_float (f -. 0.3) < 0.02)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (list int)) "still a permutation" (List.init 50 (fun i -> i))
    (Array.to_list sorted)

let test_counter_basic () =
  let c = Counter.create ~bits:9 in
  Counter.record c ~taken:true;
  Counter.record c ~taken:false;
  Counter.record c ~taken:true;
  Alcotest.(check int) "executed" 3 (Counter.executed c);
  Alcotest.(check int) "taken" 2 (Counter.taken c);
  Alcotest.(check (float 0.01)) "fraction" (2.0 /. 3.0) (Counter.taken_fraction c)

let test_counter_saturation_preserves_fraction () =
  let c = Counter.create ~bits:9 in
  for i = 1 to 5000 do
    Counter.record c ~taken:(i mod 4 <> 0)
  done;
  Alcotest.(check bool) "executed bounded" true
    (Counter.executed c <= Counter.max_value c);
  Alcotest.(check bool) "halvings happened" true (Counter.halvings c > 0);
  let f = Counter.taken_fraction c in
  Alcotest.(check bool) "fraction near 0.75" true (abs_float (f -. 0.75) < 0.05)

let test_counter_saturating_add () =
  Alcotest.(check int) "exact below the cap" 60
    (Counter.saturating_add ~max:511 25 35);
  Alcotest.(check int) "clamps at the cap" 511
    (Counter.saturating_add ~max:511 500 100);
  Alcotest.(check int) "negative operands read as zero" 5
    (Counter.saturating_add ~max:511 (-3) 5);
  (* The overflow case the old ad-hoc clamp got wrong: a sum that
     wraps past max_int must still saturate, not go negative. *)
  Alcotest.(check int) "wrap-around saturates" 511
    (Counter.saturating_add ~max:511 max_int max_int)

let test_counter_add_clamps () =
  let c = Counter.create ~bits:9 in
  Counter.add c ~executed:400 ~taken:300;
  Counter.add c ~executed:400 ~taken:300;
  Alcotest.(check int) "executed clamped at 511" 511 (Counter.executed c);
  Alcotest.(check bool) "pair invariant holds" true
    (Counter.taken c <= Counter.executed c);
  Alcotest.(check bool) "saturated" true (Counter.is_saturated c);
  (* Software merge clamps; it never halves like the hardware path. *)
  Alcotest.(check int) "no halvings" 0 (Counter.halvings c)

let test_counter_incr_noop_when_saturated () =
  let c = Counter.create ~bits:4 in
  for _ = 1 to 40 do
    Counter.incr c ~taken:true
  done;
  Alcotest.(check int) "executed stops at the cap" 15 (Counter.executed c);
  Alcotest.(check int) "taken stops with it" 15 (Counter.taken c);
  Counter.incr c ~taken:false;
  Alcotest.(check int) "saturated incr is a no-op" 15 (Counter.executed c)

let prop_counter_add_bounded =
  QCheck.Test.make ~name:"add clamps and keeps taken <= executed" ~count:200
    QCheck.(pair (list (pair (int_bound 700) (int_bound 700))) (int_range 2 12))
    (fun (steps, bits) ->
      let c = Counter.create ~bits in
      List.iter (fun (executed, taken) -> Counter.add c ~executed ~taken) steps;
      Counter.executed c <= Counter.max_value c
      && Counter.taken c <= Counter.executed c
      && Counter.taken c >= 0)

let test_counter_reset () =
  let c = Counter.create ~bits:4 in
  for _ = 1 to 100 do
    Counter.record c ~taken:true
  done;
  Counter.reset c;
  Alcotest.(check int) "executed zero" 0 (Counter.executed c);
  Alcotest.(check int) "halvings zero" 0 (Counter.halvings c)

let test_stats_mean_geomean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "geomean empty" 0.0 (Stats.geomean [])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  Alcotest.(check (float 1e-6)) "spread" (sqrt (2.0 /. 3.0))
    (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_ratio_pct () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Stats.ratio 1 2);
  Alcotest.(check (float 1e-9)) "ratio zero den" 0.0 (Stats.ratio 1 0);
  Alcotest.(check (float 1e-9)) "pct" 25.0 (Stats.pct 1 4)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [ 0.5; 1.5; 1.6; 3.5; 9.0; -1.0 ] in
  Alcotest.(check (list int)) "buckets" [ 2; 2; 0; 2 ] (Array.to_list h)

let test_tabular_render () =
  let t = Tabular.create ~header:[ ("name", Tabular.Left); ("val", Tabular.Right) ] in
  Tabular.add_row t [ "alpha"; "1" ];
  Tabular.add_row t [ "b"; "22" ];
  Tabular.add_separator t;
  Tabular.add_row t [ "short" ];
  let s = Tabular.render t in
  Alcotest.(check bool) "contains alpha" true (contains s "alpha");
  let lines = String.split_on_char '\n' s in
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "uniform width" (List.hd widths) w) widths

let test_tabular_too_many_cells () =
  let t = Tabular.create ~header:[ ("a", Tabular.Left) ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Tabular.add_row: too many cells")
    (fun () -> Tabular.add_row t [ "x"; "y" ])

let test_tabular_cells () =
  Alcotest.(check string) "float" "3.1" (Tabular.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.142" (Tabular.cell_float ~decimals:3 3.14159);
  Alcotest.(check string) "pct" "81.5" (Tabular.cell_pct 81.49)

let test_pool_map_ordered_gather () =
  let xs = List.init 100 (fun i -> i) in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        expected
        (Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 8 ]

let test_pool_run_empty () =
  Alcotest.(check (list int)) "no tasks" [] (Pool.run ~jobs:4 []);
  Alcotest.(check (list int)) "no tasks seq" [] (Pool.run ~jobs:1 [])

let test_pool_earliest_exception_wins () =
  (* Tasks at indices 3 and 5 fail; whatever the schedule, the index-3
     exception is the one reported. *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d first failure" jobs)
        (Failure "boom 3")
        (fun () ->
          ignore
            (Pool.map ~jobs
               (fun x ->
                 if x = 3 || x = 5 then failwith (Printf.sprintf "boom %d" x)
                 else x)
               (List.init 8 (fun i -> i)))))
    [ 1; 4 ]

let test_pool_dag_submission () =
  (* Tasks submitting continuation tasks: wait covers the transitive
     closure. *)
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      let hits = Atomic.make 0 in
      for _ = 1 to 10 do
        Pool.submit pool (fun () ->
            Atomic.incr hits;
            Pool.submit pool (fun () -> Atomic.incr hits))
      done;
      Pool.wait pool;
      Pool.shutdown pool;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d all tasks ran" jobs)
        20 (Atomic.get hits))
    [ 1; 3 ]

let test_pool_parallel_actually_concurrent () =
  (* With 2 workers, two tasks that each wait for the other's side
     effect can only finish if they really run concurrently. *)
  let pool = Pool.create ~jobs:2 () in
  let a = Atomic.make false in
  let b = Atomic.make false in
  let spin mine other =
    Atomic.set mine true;
    while not (Atomic.get other) do
      Domain.cpu_relax ()
    done
  in
  Pool.submit pool (fun () -> spin a b);
  Pool.submit pool (fun () -> spin b a);
  Pool.wait pool;
  Pool.shutdown pool;
  Alcotest.(check bool) "both ran" true (Atomic.get a && Atomic.get b)

(* Property tests. *)

let prop_pool_map_equals_list_map =
  QCheck.Test.make ~name:"Pool.map agrees with List.map for any jobs" ~count:50
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) ->
      Pool.map ~jobs (fun x -> (2 * x) + 1) xs
      = List.map (fun x -> (2 * x) + 1) xs)

let prop_counter_never_exceeds_max =
  QCheck.Test.make ~name:"counter stays within width" ~count:200
    QCheck.(pair (int_bound 2000) (int_range 2 12))
    (fun (n, bits) ->
      let c = Counter.create ~bits in
      for i = 1 to n do
        Counter.record c ~taken:(i mod 3 = 0)
      done;
      Counter.executed c <= Counter.max_value c
      && Counter.taken c <= Counter.executed c)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let p25 = Stats.percentile xs 25.0 in
      let p75 = Stats.percentile xs 75.0 in
      p25 <= p75)

let () =
  Alcotest.run "vp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "different seeds" `Quick test_rng_different_seeds;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bool probability" `Quick test_rng_bool_probability;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        ] );
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "saturation" `Quick test_counter_saturation_preserves_fraction;
          Alcotest.test_case "saturating add" `Quick test_counter_saturating_add;
          Alcotest.test_case "add clamps" `Quick test_counter_add_clamps;
          Alcotest.test_case "incr saturates" `Quick test_counter_incr_noop_when_saturated;
          Alcotest.test_case "reset" `Quick test_counter_reset;
          QCheck_alcotest.to_alcotest prop_counter_never_exceeds_max;
          QCheck_alcotest.to_alcotest prop_counter_add_bounded;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/geomean" `Quick test_stats_mean_geomean;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "ratio/pct" `Quick test_stats_ratio_pct;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
        ] );
      ( "tabular",
        [
          Alcotest.test_case "render" `Quick test_tabular_render;
          Alcotest.test_case "too many cells" `Quick test_tabular_too_many_cells;
          Alcotest.test_case "cells" `Quick test_tabular_cells;
        ] );
      ( "pool",
        [
          Alcotest.test_case "ordered gather" `Quick test_pool_map_ordered_gather;
          Alcotest.test_case "empty run" `Quick test_pool_run_empty;
          Alcotest.test_case "earliest exception" `Quick
            test_pool_earliest_exception_wins;
          Alcotest.test_case "dag submission" `Quick test_pool_dag_submission;
          Alcotest.test_case "concurrent workers" `Quick
            test_pool_parallel_actually_concurrent;
          QCheck_alcotest.to_alcotest prop_pool_map_equals_list_map;
        ] );
    ]
