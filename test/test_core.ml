(* Integration tests for the vacuum core library: the full driver on
   real workloads, configuration wiring, and every evaluation metric. *)

module Registry = Vp_workloads.Registry
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Config = Vacuum.Config
module Driver = Vacuum.Driver
module Coverage = Vacuum.Coverage
module Expansion = Vacuum.Expansion
module Speedup = Vacuum.Speedup
module Report = Vacuum.Report
module Progs = Vp_test_support.Progs

(* Small but realistic: perl's short input exercises multiple phases,
   shared roots and linking. *)
let perl_image =
  lazy
    (let w = Option.get (Registry.find ~bench:"134.perl" ~input:"B") in
     Program.layout (w.Registry.program ()))

let perl_profile = lazy (Driver.profile (Lazy.force perl_image))

let test_config_experiments () =
  let c = Config.experiment ~inference:false ~linking:true in
  Alcotest.(check bool) "inference off" false
    (Config.identify c).Vp_region.Identify.block_inference;
  Alcotest.(check bool) "linking on" true (Config.linking c);
  Alcotest.(check string) "name" "no inference, with linking"
    (Config.experiment_name ~inference:false ~linking:true);
  let tiny = Config.with_detector Vp_hsd.Config.tiny Config.default in
  Alcotest.(check int) "detector swapped" 1 (Config.detector tiny).Vp_hsd.Config.sets

let test_profile_contents () =
  let p = Lazy.force perl_profile in
  Alcotest.(check bool) "ran to completion" true p.Driver.outcome.Emulator.halted;
  Alcotest.(check bool) "snapshots recorded" true (p.Driver.snapshots <> []);
  Alcotest.(check bool) "phases found" true
    (Vp_phase.Phase_log.unique_count p.Driver.log >= 2);
  Alcotest.(check bool) "aggregate profile populated" true
    (Vp_exec.Branch_profile.branches p.Driver.aggregate > 5);
  (* Aggregate counts match the emulator's branch total. *)
  Alcotest.(check int) "aggregate total" p.Driver.outcome.Emulator.cond_branches
    (Vp_exec.Branch_profile.total_executed p.Driver.aggregate)

let test_rewrite_structure () =
  let r = Driver.rewrite_of_profile (Lazy.force perl_profile) in
  Alcotest.(check bool) "regions per phase" true
    (List.length r.Driver.regions
    = Vp_phase.Phase_log.unique_count r.Driver.source.Driver.log);
  Alcotest.(check bool) "packages built" true (r.Driver.packages <> []);
  (* interp must be a root in at least two phase packages: the shared
     launch point of the paper's perl example. *)
  let interp_packages =
    List.filter (fun p -> p.Vp_package.Pkg.root = "interp") r.Driver.packages
  in
  Alcotest.(check bool) "interp rooted in >= 2 packages" true
    (List.length interp_packages >= 2)

let test_coverage_and_equivalence () =
  let r = Driver.rewrite_of_profile (Lazy.force perl_profile) in
  let c = Coverage.measure r in
  Alcotest.(check bool) "equivalent" true c.Coverage.equivalent;
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.1f%% high" c.Coverage.coverage_pct)
    true
    (c.Coverage.coverage_pct > 80.0)

let test_linking_improves_perl () =
  let p = Lazy.force perl_profile in
  let with_link =
    Coverage.measure
      ~config:(Config.experiment ~inference:true ~linking:true)
      (Driver.rewrite_of_profile
         ~config:(Config.experiment ~inference:true ~linking:true)
         p)
  in
  let without =
    Coverage.measure
      ~config:(Config.experiment ~inference:true ~linking:false)
      (Driver.rewrite_of_profile
         ~config:(Config.experiment ~inference:true ~linking:false)
         p)
  in
  Alcotest.(check bool)
    (Printf.sprintf "linking >= no linking (%.1f vs %.1f)"
       with_link.Coverage.coverage_pct without.Coverage.coverage_pct)
    true
    (with_link.Coverage.coverage_pct >= without.Coverage.coverage_pct);
  Alcotest.(check bool) "no-linking still equivalent" true without.Coverage.equivalent

let test_expansion_metrics () =
  let r = Driver.rewrite_of_profile (Lazy.force perl_profile) in
  let e = Expansion.measure r in
  Alcotest.(check bool) "selected <= original" true
    (e.Expansion.selected_static <= e.Expansion.original_static);
  Alcotest.(check bool) "selected nonzero" true (e.Expansion.selected_static > 0);
  Alcotest.(check bool) "replication >= 1" true (e.Expansion.replication >= 1.0);
  Alcotest.(check bool) "moderate expansion" true (e.Expansion.increase_pct < 50.0);
  (* package_static consistency with the emitted image. *)
  Alcotest.(check int) "package static consistent"
    r.Driver.emitted.Vp_package.Emit.package_instructions e.Expansion.package_static

let test_speedup_positive () =
  let r = Driver.rewrite_of_profile (Lazy.force perl_profile) in
  let s = Speedup.measure r in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.3f sane" s.Speedup.speedup)
    true
    (s.Speedup.speedup > 0.8 && s.Speedup.speedup < 3.0);
  Alcotest.(check bool) "baseline cycles > 0" true (s.Speedup.baseline.Vp_cpu.Pipeline.cycles > 0)

let test_report_fields () =
  let report =
    Report.evaluate_profile ~timing:false ~name:"134.perl/B" (Lazy.force perl_profile)
  in
  Alcotest.(check string) "name" "134.perl/B" report.Report.name;
  Alcotest.(check bool) "instructions counted" true (report.Report.instructions > 100_000);
  Alcotest.(check bool) "recordings <= detections" true
    (report.Report.recordings <= report.Report.raw_detections);
  Alcotest.(check bool) "phases" true (report.Report.unique_phases >= 2);
  (match report.Report.speedup with
  | None -> ()
  | Some _ -> Alcotest.fail "timing was disabled");
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 report.Report.categories in
  Alcotest.(check (float 1e-6)) "categories sum to 100" 100.0 total;
  (* Rendering succeeds and mentions the workload. *)
  let text = Format.asprintf "%a" Report.pp report in
  Alcotest.(check bool) "render mentions name" true
    (String.length text > 40)

let test_hardware_history_reduces_recordings () =
  let img = Lazy.force perl_image in
  let base = Driver.profile img in
  let with_history =
    Driver.profile ~config:(Config.with_history_size 4 Config.default) img
  in
  Alcotest.(check bool)
    (Printf.sprintf "history reduces recordings (%d -> %d)"
       (List.length base.Driver.snapshots)
       (List.length with_history.Driver.snapshots))
    true
    (List.length with_history.Driver.snapshots < List.length base.Driver.snapshots);
  (* And the phase structure survives the filtering. *)
  Alcotest.(check bool) "phases survive" true
    (Vp_phase.Phase_log.unique_count with_history.Driver.log >= 2)

let test_aggregate_snapshot () =
  let p = Lazy.force perl_profile in
  let snap = Vacuum.Aggregate.snapshot_of_profile p in
  let module S = Vp_hsd.Snapshot in
  Alcotest.(check bool) "selected some branches" true (snap.S.branches <> []);
  (* Every selected branch clears the share floor and keeps its exact
     aggregate counts. *)
  let total = p.Driver.outcome.Vp_exec.Emulator.cond_branches in
  List.iter
    (fun e ->
      Alcotest.(check bool) "above floor" true
        (e.S.executed >= max 1 (int_of_float (0.001 *. float_of_int total)));
      let executed, taken =
        Option.get (Vp_exec.Branch_profile.find p.Driver.aggregate e.S.pc)
      in
      Alcotest.(check int) "exact executed" executed e.S.executed;
      Alcotest.(check int) "exact taken" taken e.S.taken)
    snap.S.branches;
  let pcs = S.branch_pcs snap in
  Alcotest.(check bool) "sorted" true (List.sort compare pcs = pcs)

let test_aggregate_rewrite_equivalence () =
  let p = Lazy.force perl_profile in
  let r = Vacuum.Aggregate.rewrite p in
  Alcotest.(check int) "single pseudo-phase" 1 (List.length r.Driver.regions);
  let c = Vacuum.Coverage.measure r in
  Alcotest.(check bool) "equivalent" true c.Coverage.equivalent;
  Alcotest.(check bool) "covers execution" true (c.Coverage.coverage_pct > 70.0)

let test_profile_truncation_flag () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let config = Config.with_detector Vp_hsd.Config.tiny Config.default in
  let full = Driver.profile ~config img in
  Alcotest.(check bool) "full run not truncated" false full.Driver.truncated;
  let starved = Driver.profile ~config:(Config.with_fuel 500 config) img in
  Alcotest.(check bool) "starved run truncated" true starved.Driver.truncated;
  Alcotest.(check bool) "outcome not halted" false
    starved.Driver.outcome.Emulator.halted;
  Alcotest.(check bool) "fuel bounds instructions" true
    (starved.Driver.outcome.Emulator.instructions <= 500)

let test_engine_reports_truncation () =
  let config =
    Config.with_fuel 500 (Config.with_detector Vp_hsd.Config.tiny Config.default)
  in
  let engine = Vacuum.Engine.create ~jobs:1 ~profile_config:config () in
  let spec =
    {
      Vacuum.Engine.name = "starved";
      load = (fun () -> Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3));
    }
  in
  ignore (Vacuum.Engine.profile engine spec);
  Alcotest.(check (list string))
    "starved spec reported" [ "starved" ]
    (Vacuum.Engine.truncated_profiles engine)

(* The engine's determinism contract: whatever the jobs count, every
   cached artefact — coverage, architectural checksums, cycle-accurate
   timing — is identical to the sequential reference schedule. *)
let engine_fingerprint jobs =
  let module Engine = Vacuum.Engine in
  let detector = Vp_hsd.Config.tiny in
  let engine =
    Engine.create ~jobs
      ~profile_config:(Config.with_detector detector Config.default)
      ()
  in
  let specs =
    [
      {
        Engine.name = "two-phase";
        load = (fun () -> Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3));
      };
      {
        Engine.name = "two-phase-short";
        load = (fun () -> Program.layout (Progs.two_phase ~iters_per_phase:2000 ~repeats:2));
      };
    ]
  in
  let cells =
    List.map
      (fun (inference, linking) ->
        {
          Engine.key = Printf.sprintf "%b%b" inference linking;
          config = Config.with_detector detector (Config.experiment ~inference ~linking);
        })
      [ (true, true); (true, false) ]
  in
  Engine.run ~rewrites:true ~timing:true engine ~specs ~cells ();
  List.concat_map
    (fun spec ->
      let b = Engine.baseline engine spec ~cpu:(Config.cpu (List.hd cells).Engine.config) in
      Printf.sprintf "%s baseline %d cycles %d instrs" spec.Engine.name
        b.Vp_cpu.Pipeline.cycles b.Vp_cpu.Pipeline.instructions
      :: List.concat_map
           (fun cell ->
             let c = Engine.coverage engine spec cell in
             let s = Engine.optimized engine spec cell in
             [
               Printf.sprintf "%s/%s coverage %.6f equivalent %b checksum %d"
                 spec.Engine.name cell.Engine.key c.Coverage.coverage_pct
                 c.Coverage.equivalent c.Coverage.outcome.Emulator.checksum;
               Printf.sprintf "%s/%s optimized %d cycles %d instrs"
                 spec.Engine.name cell.Engine.key s.Vp_cpu.Pipeline.cycles
                 s.Vp_cpu.Pipeline.instructions;
             ])
           cells)
    specs

let test_engine_parallel_matches_sequential () =
  let sequential = engine_fingerprint 1 in
  let parallel = engine_fingerprint 4 in
  Alcotest.(check (list string)) "jobs=4 matches jobs=1" sequential parallel

let test_driver_on_builder_program () =
  (* The pipeline also works on plain builder programs with the tiny
     detector, end to end through the public API. *)
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let config = Config.with_detector Vp_hsd.Config.tiny Config.default in
  let r = Driver.rewrite ~config img in
  let c = Coverage.measure ~config r in
  Alcotest.(check bool) "equivalent" true c.Coverage.equivalent;
  Alcotest.(check bool) "covered" true (c.Coverage.coverage_pct > 50.0)

let () =
  Alcotest.run "vacuum_core"
    [
      ( "config",
        [ Alcotest.test_case "experiments" `Quick test_config_experiments ] );
      ( "driver",
        [
          Alcotest.test_case "profile contents" `Slow test_profile_contents;
          Alcotest.test_case "rewrite structure" `Slow test_rewrite_structure;
          Alcotest.test_case "builder program" `Quick test_driver_on_builder_program;
          Alcotest.test_case "hardware history" `Slow test_hardware_history_reduces_recordings;
          Alcotest.test_case "truncation flag" `Quick test_profile_truncation_flag;
        ] );
      ( "engine",
        [
          Alcotest.test_case "reports truncation" `Quick test_engine_reports_truncation;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_engine_parallel_matches_sequential;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "coverage + equivalence" `Slow test_coverage_and_equivalence;
          Alcotest.test_case "linking improves perl" `Slow test_linking_improves_perl;
          Alcotest.test_case "expansion" `Slow test_expansion_metrics;
          Alcotest.test_case "speedup" `Slow test_speedup_positive;
          Alcotest.test_case "report fields" `Slow test_report_fields;
          Alcotest.test_case "aggregate snapshot" `Slow test_aggregate_snapshot;
          Alcotest.test_case "aggregate rewrite" `Slow test_aggregate_rewrite_equivalence;
        ] );
    ]
