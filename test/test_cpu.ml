(* Tests for vp_cpu: cache model, predictors, and the trace-driven
   pipeline timing model. *)

module Config = Vp_cpu.Config
module Cache = Vp_cpu.Cache
module Predictor = Vp_cpu.Predictor
module Pipeline = Vp_cpu.Pipeline
module Program = Vp_prog.Program
module Progs = Vp_test_support.Progs

let small_cache = { Config.size_bytes = 1024; line_bytes = 64; assoc = 2 }

let test_cache_cold_miss_then_hit () =
  let c = Cache.create small_cache in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~addr:0);
  Alcotest.(check bool) "hit" true (Cache.access c ~addr:0);
  Alcotest.(check bool) "same line hit" true (Cache.access c ~addr:63);
  Alcotest.(check bool) "next line miss" false (Cache.access c ~addr:64);
  Alcotest.(check int) "two misses" 2 (Cache.misses c);
  Alcotest.(check int) "four accesses" 4 (Cache.accesses c)

let test_cache_lru_eviction () =
  (* 1024B / 64B lines = 16 lines, 2-way -> 8 sets.  Lines mapping to
     set 0: addresses 0, 512, 1024 ... *)
  let c = Cache.create small_cache in
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:512);
  (* Touch 0 so 512 becomes LRU. *)
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:1024);
  (* 512 evicted; 0 still resident. *)
  Alcotest.(check bool) "0 retained" true (Cache.access c ~addr:0);
  Alcotest.(check bool) "512 evicted" false (Cache.access c ~addr:512)

let test_cache_miss_rate () =
  let c = Cache.create small_cache in
  for i = 0 to 99 do
    ignore (Cache.access c ~addr:(i * 8))
  done;
  Alcotest.(check bool) "spatial locality" true (Cache.miss_rate c < 0.2);
  Cache.reset_stats c;
  Alcotest.(check int) "stats reset" 0 (Cache.accesses c)

let test_gshare_learns_loop () =
  let p = Predictor.create Config.default in
  (* A 99%-taken loop branch: after warmup the predictor is nearly
     perfect. *)
  for i = 1 to 2000 do
    ignore (Predictor.predict_branch p ~pc:400 ~taken:(i mod 100 <> 0))
  done;
  let s = Predictor.stats p in
  Alcotest.(check bool)
    (Printf.sprintf "mispredicts %d low" s.Predictor.mispredictions)
    true
    (s.Predictor.mispredictions < 100)

let test_gshare_alternating_pattern () =
  (* Strict alternation is captured by history correlation. *)
  let p = Predictor.create Config.default in
  for i = 1 to 2000 do
    ignore (Predictor.predict_branch p ~pc:52 ~taken:(i mod 2 = 0))
  done;
  let s = Predictor.stats p in
  Alcotest.(check bool) "alternation learned" true (s.Predictor.mispredictions < 60)

let test_ras_matches_calls () =
  let p = Predictor.create Config.default in
  Predictor.call_push p ~return_addr:101;
  Predictor.call_push p ~return_addr:202;
  Alcotest.(check bool) "inner return" true (Predictor.ret_predict p ~actual:202);
  Alcotest.(check bool) "outer return" true (Predictor.ret_predict p ~actual:101);
  Alcotest.(check bool) "underflow mispredicts" false (Predictor.ret_predict p ~actual:5)

let test_ras_overflow_wraps () =
  let p = Predictor.create Config.default in
  let depth = Config.default.Config.ras_entries + 4 in
  for i = 1 to depth do
    Predictor.call_push p ~return_addr:i
  done;
  (* The newest entries are intact even after wrap. *)
  Alcotest.(check bool) "top ok" true (Predictor.ret_predict p ~actual:depth)

let test_btb_install_and_hit () =
  let p = Predictor.create Config.default in
  Alcotest.(check bool) "first lookup misses" false (Predictor.btb_lookup p ~pc:9 ~target:77);
  Alcotest.(check bool) "second hits" true (Predictor.btb_lookup p ~pc:9 ~target:77);
  Alcotest.(check bool) "retarget misses" false (Predictor.btb_lookup p ~pc:9 ~target:78)

let test_pipeline_basic_sanity () =
  let img = Program.layout (Progs.sum_to_n 1000) in
  let s = Pipeline.simulate img in
  Alcotest.(check bool) "cycles positive" true (s.Pipeline.cycles > 0);
  Alcotest.(check bool) "instructions counted" true (s.Pipeline.instructions > 3000);
  Alcotest.(check bool) "ipc within issue width" true
    (s.Pipeline.ipc <= float_of_int Config.default.Config.issue_width);
  Alcotest.(check bool) "ipc positive" true (s.Pipeline.ipc > 0.1)

let test_pipeline_deterministic () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:500 ~repeats:2) in
  let a = Pipeline.simulate img in
  let b = Pipeline.simulate img in
  Alcotest.(check int) "same cycles" a.Pipeline.cycles b.Pipeline.cycles;
  Alcotest.(check int) "same mispredicts" a.Pipeline.branch_mispredicts
    b.Pipeline.branch_mispredicts

let test_pipeline_more_work_more_cycles () =
  let short = Pipeline.simulate (Program.layout (Progs.sum_to_n 100)) in
  let long = Pipeline.simulate (Program.layout (Progs.sum_to_n 10_000)) in
  Alcotest.(check bool) "monotone" true (long.Pipeline.cycles > short.Pipeline.cycles)

let test_pipeline_biased_branches_predict_well () =
  let img = Program.layout (Progs.biased_branch ~iters:20_000 ~bias_mod:100) in
  let s = Pipeline.simulate img in
  let rate =
    float_of_int s.Pipeline.branch_mispredicts /. float_of_int s.Pipeline.instructions
  in
  Alcotest.(check bool) "low mispredict rate" true (rate < 0.01)

let test_pipeline_dependent_chain_slower () =
  (* A long dependent multiply chain must be slower per instruction
     than independent adds. *)
  let module B = Vp_prog.Builder in
  let module Op = Vp_isa.Op in
  let build dependent =
    let b = B.create () in
    B.func b "main" ~nargs:0 (fun fb _ ->
        let v = B.vreg fb in
        let w = B.vreg fb in
        let i = B.vreg fb in
        B.li fb v 3;
        B.li fb w 5;
        B.for_ fb i ~from:(B.K 0) ~below:(B.K 2000) (fun () ->
            if dependent then begin
              B.alu fb Op.Mul v v (B.K 3);
              B.alu fb Op.Mul v v (B.K 5);
              B.alu fb Op.Mul v v (B.K 7);
              B.alu fb Op.And v v (B.K 0xFFFF)
            end
            else begin
              B.alu fb Op.Add v v (B.K 3);
              B.alu fb Op.Add w w (B.K 5);
              B.alu fb Op.Xor v v (B.K 7);
              B.alu fb Op.And w w (B.K 0xFFFF)
            end);
        B.ret fb (Some v);
        B.halt fb);
    Program.layout (B.program b ~entry:"main")
  in
  let dep = Pipeline.simulate (build true) in
  let indep = Pipeline.simulate (build false) in
  Alcotest.(check bool)
    (Printf.sprintf "dependent ipc %.2f < independent ipc %.2f" dep.Pipeline.ipc
       indep.Pipeline.ipc)
    true
    (dep.Pipeline.ipc < indep.Pipeline.ipc)

let test_simulate_phases_partitions () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:500 ~repeats:2) in
  let whole = Pipeline.simulate img in
  (* A synthetic two-interval timeline covering all branches. *)
  let total_branches =
    (Vp_exec.Emulator.run img).Vp_exec.Emulator.cond_branches
  in
  let timeline =
    [ (0, total_branches / 2, 0); (total_branches / 2, total_branches + 1, 1) ]
  in
  let segs = Pipeline.simulate_phases ~timeline img in
  Alcotest.(check bool) "both phases present" true (List.length segs >= 2);
  let branches = List.fold_left (fun a s -> a + s.Pipeline.branches) 0 segs in
  Alcotest.(check int) "all branches attributed" total_branches branches;
  let instrs = List.fold_left (fun a s -> a + s.Pipeline.seg_instructions) 0 segs in
  Alcotest.(check bool) "most instructions attributed" true
    (instrs <= whole.Pipeline.instructions
    && instrs > whole.Pipeline.instructions * 9 / 10);
  List.iter
    (fun s ->
      Alcotest.(check bool) "ipc sane" true
        (s.Pipeline.seg_ipc > 0.0 && s.Pipeline.seg_ipc <= 8.0))
    segs

let test_pipeline_rejects_unresolved_branch () =
  (* A never-taken branch with an unresolved [Label] target: the
     emulator runs fine (target_addr is only needed when taken), but
     the timing model must refuse rather than silently skip the
     predictor and progress callback, which would desync phase
     attribution. *)
  let module Instr = Vp_isa.Instr in
  let module Op = Vp_isa.Op in
  let module Reg = Vp_isa.Reg in
  let img =
    {
      Vp_prog.Image.code =
        [|
          Instr.Li { dst = Reg.ret_value; imm = 1 };
          Instr.Br
            {
              cond = Op.Lt;
              src1 = Reg.zero;
              src2 = Reg.zero;
              target = Instr.Label "nowhere";
            };
          Instr.Halt;
        |];
      syms = [ { Vp_prog.Image.name = "main"; start = 0; len = 3 } ];
      entry = 0;
      orig_limit = 3;
      data_init = [];
      data_break = 0;
    }
  in
  let outcome = Vp_exec.Emulator.run img in
  Alcotest.(check bool) "emulator completes" true
    outcome.Vp_exec.Emulator.halted;
  Alcotest.check_raises "pipeline rejects"
    (Vp_util.Error.Error
       {
         stage = "pipeline";
         what = "unresolved label nowhere in branch at 0x1";
         pc = Some 1;
         label = Some "nowhere";
         workload = None;
       })
    (fun () -> ignore (Pipeline.simulate img))

let test_speedup_ratio () =
  let img = Program.layout (Progs.sum_to_n 1000) in
  let s = Pipeline.simulate img in
  Alcotest.(check (float 1e-9)) "self speedup" 1.0
    (Pipeline.speedup ~baseline:s ~optimized:s)

(* The retire path must not allocate per instruction: a 10x longer
   simulation allocates the same constant amount (caches, predictor,
   decoded tables are per-call or memoized, not per-retirement). *)
let test_simulate_allocation_flat () =
  let img =
    Program.layout (Progs.two_phase ~iters_per_phase:100_000 ~repeats:2)
  in
  ignore (Pipeline.simulate ~fuel:1_000 img);
  let words f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  let short = words (fun () -> ignore (Pipeline.simulate ~fuel:10_000 img)) in
  let long = words (fun () -> ignore (Pipeline.simulate ~fuel:100_000 img)) in
  Alcotest.(check bool)
    (Printf.sprintf "allocation flat (short %.0f, long %.0f)" short long)
    true
    (long -. short < 10_000.)

let prop_pipeline_cycles_at_least_instructions_over_width =
  QCheck.Test.make ~name:"cycles bounded below by width limit" ~count:20
    QCheck.(int_range 10 2000)
    (fun n ->
      let img = Program.layout (Progs.sum_to_n n) in
      let s = Pipeline.simulate img in
      s.Pipeline.cycles * Config.default.Config.issue_width >= s.Pipeline.instructions)

let () =
  Alcotest.run "vp_cpu"
    [
      ( "cache",
        [
          Alcotest.test_case "cold miss then hit" `Quick test_cache_cold_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "miss rate" `Quick test_cache_miss_rate;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "gshare loop" `Quick test_gshare_learns_loop;
          Alcotest.test_case "gshare alternation" `Quick test_gshare_alternating_pattern;
          Alcotest.test_case "ras" `Quick test_ras_matches_calls;
          Alcotest.test_case "ras overflow" `Quick test_ras_overflow_wraps;
          Alcotest.test_case "btb" `Quick test_btb_install_and_hit;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "sanity" `Quick test_pipeline_basic_sanity;
          Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
          Alcotest.test_case "monotone" `Quick test_pipeline_more_work_more_cycles;
          Alcotest.test_case "prediction quality" `Quick
            test_pipeline_biased_branches_predict_well;
          Alcotest.test_case "dependent chain slower" `Quick
            test_pipeline_dependent_chain_slower;
          Alcotest.test_case "speedup ratio" `Quick test_speedup_ratio;
          Alcotest.test_case "per-phase attribution" `Quick test_simulate_phases_partitions;
          Alcotest.test_case "rejects unresolved branch" `Quick
            test_pipeline_rejects_unresolved_branch;
          Alcotest.test_case "zero per-instruction allocation" `Quick
            test_simulate_allocation_flat;
          QCheck_alcotest.to_alcotest prop_pipeline_cycles_at_least_instructions_over_width;
        ] );
    ]
