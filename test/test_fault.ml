(* Tests for the fault-injection harness, the package soundness
   verifier, and the pipeline's graceful-degradation ladder. *)

module R = Vp_util.Rng
module Plan = Vp_fault.Plan
module Inject = Vp_fault.Inject
module Snapshot = Vp_hsd.Snapshot
module Image = Vp_prog.Image
module Instr = Vp_isa.Instr
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator
module Verify = Vp_package.Verify
module Emit = Vp_package.Emit
module Pkg = Vp_package.Pkg
module Driver = Vacuum.Driver
module Config = Vacuum.Config
module Chaos = Vacuum.Chaos
module Progs = Vp_test_support.Progs
module Gen = Vp_test_support.Gen
module Registry = Vp_workloads.Registry

let counter_max = 511

(* --- Rng splittable streams --- *)

let test_stream_keyed_deterministic () =
  let a = R.stream (R.create ~seed:42) 7 in
  let b = R.stream (R.create ~seed:42) 7 in
  Alcotest.(check int) "same key same stream" (R.next a) (R.next b);
  let c = R.stream (R.create ~seed:42) 8 in
  Alcotest.(check bool) "distinct keys decorrelate" true
    (R.next (R.stream (R.create ~seed:42) 7) <> R.next c)

let test_stream_schedule_independent () =
  (* Deriving streams in any order yields the same streams: stream
     does not advance the parent, unlike split. *)
  let r1 = R.create ~seed:99 in
  let a1 = R.stream r1 3 in
  let b1 = R.stream r1 5 in
  let r2 = R.create ~seed:99 in
  let b2 = R.stream r2 5 in
  let a2 = R.stream r2 3 in
  Alcotest.(check int) "a independent of order" (R.next a1) (R.next a2);
  Alcotest.(check int) "b independent of order" (R.next b1) (R.next b2);
  Alcotest.(check int) "parent untouched"
    (R.next (R.create ~seed:99))
    (R.next r1)

let test_stream_seed_nonnegative () =
  let root = R.create ~seed:123 in
  for k = 0 to 100 do
    Alcotest.(check bool) "non-negative" true (R.stream_seed root k >= 0)
  done

(* --- Inject --- *)

let entry pc executed taken = { Snapshot.pc; executed; taken }

let snaps_fixture =
  List.init 10 (fun i ->
      {
        Snapshot.id = i;
        detected_at = i * 1000;
        ended_at = (i * 1000) + 800;
        branches =
          [ entry 10 100 60; entry 20 (40 + i) 7; entry 30 500 499 ];
      })

let test_inject_clean_is_identity () =
  let out = Inject.snapshots ~plan:Plan.clean ~counter_max snaps_fixture in
  Alcotest.(check bool) "physically unchanged" true (out == snaps_fixture);
  Alcotest.(check int) "fuel unchanged" 12345
    (Inject.fuel ~plan:Plan.clean 12345)

let test_inject_deterministic () =
  let plan = Plan.with_seed (Option.get (Plan.find_preset "drop-snapshots")) 5 in
  let a = Inject.snapshots ~plan ~counter_max snaps_fixture in
  let b = Inject.snapshots ~plan ~counter_max snaps_fixture in
  Alcotest.(check bool) "same plan same faults" true (a = b);
  let c =
    Inject.snapshots ~plan:(Plan.with_seed plan 6) ~counter_max snaps_fixture
  in
  Alcotest.(check bool) "different seed different faults" true (a <> c)

let test_inject_saturate_bounds () =
  let plan = Plan.v ~saturate:1.0 "all-sat" in
  let out = Inject.snapshots ~plan ~counter_max snaps_fixture in
  List.iter
    (fun (s : Snapshot.t) ->
      List.iter
        (fun (e : Snapshot.entry) ->
          Alcotest.(check int) "executed saturated" counter_max e.Snapshot.executed;
          Alcotest.(check int) "taken saturated" counter_max e.Snapshot.taken)
        s.Snapshot.branches)
    out

let test_inject_truncate () =
  let plan = Plan.v ~truncate_frac:0.5 "half" in
  let out = Inject.snapshots ~plan ~counter_max snaps_fixture in
  Alcotest.(check bool) "shorter" true
    (List.length out < List.length snaps_fixture);
  let cut =
    List.fold_left (fun m (s : Snapshot.t) -> max m s.Snapshot.ended_at) 0 out
  in
  let full =
    List.fold_left
      (fun m (s : Snapshot.t) -> max m s.Snapshot.ended_at)
      0 snaps_fixture
  in
  Alcotest.(check bool) "extent clipped" true (cut < full);
  List.iter
    (fun (s : Snapshot.t) ->
      Alcotest.(check bool) "well-formed extent" true
        (s.Snapshot.ended_at >= s.Snapshot.detected_at))
    out

let test_inject_duplicate_and_alias () =
  let dup = Plan.v ~duplicate:1.0 "dup" in
  let out = Inject.snapshots ~plan:dup ~counter_max snaps_fixture in
  Alcotest.(check int) "every snapshot doubled"
    (2 * List.length snaps_fixture)
    (List.length out);
  Alcotest.(check bool) "ids renumbered" true
    (List.mapi (fun i _ -> i) out
    = List.map (fun (s : Snapshot.t) -> s.Snapshot.id) out);
  let alias = Plan.v ~alias:1.0 "alias" in
  let out = Inject.snapshots ~plan:alias ~counter_max snaps_fixture in
  List.iter
    (fun (s : Snapshot.t) ->
      Alcotest.(check int) "one entry folded" 2
        (List.length s.Snapshot.branches);
      (* Entries stay ascending by pc and within counter range. *)
      let pcs = List.map (fun (e : Snapshot.entry) -> e.Snapshot.pc) s.Snapshot.branches in
      Alcotest.(check bool) "ascending" true (List.sort compare pcs = pcs);
      List.iter
        (fun (e : Snapshot.entry) ->
          Alcotest.(check bool) "counters bounded" true
            (e.Snapshot.executed <= counter_max
            && e.Snapshot.taken <= e.Snapshot.executed))
        s.Snapshot.branches)
    out

(* --- soundness verifier --- *)

let rewrite_fixture =
  lazy
    (let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
     (img, Driver.rewrite img))

let test_verifier_accepts_pipeline_output () =
  let _, r = Lazy.force rewrite_fixture in
  let report = r.Driver.verification in
  Alcotest.(check bool) "packages emitted" true (report.Verify.packages > 0);
  Alcotest.(check bool)
    (Format.asprintf "sound: %a" Verify.pp_report report)
    true (Verify.ok report);
  Alcotest.(check (list (of_pp Driver.pp_demotion))) "no demotions" []
    r.Driver.demotions

let test_verifier_rejects_unresolved_label () =
  let img, r = Lazy.force rewrite_fixture in
  let e = r.Driver.emitted in
  let broken =
    {
      e with
      Emit.image =
        Image.patch e.Emit.image
          [ (img.Image.orig_limit, Instr.Jmp { target = Instr.Label "bogus" }) ];
    }
  in
  let report = Verify.check ~original:img broken in
  Alcotest.(check bool) "rejected" false (Verify.ok report);
  Alcotest.(check bool) "names the label" true
    (List.exists
       (fun (v : Verify.violation) -> v.Verify.label = Some "bogus")
       report.Verify.violations)

let test_verifier_rejects_tampered_original_code () =
  let img, r = Lazy.force rewrite_fixture in
  let e = r.Driver.emitted in
  (* Overwrite an original-code instruction outside the launch-patch
     set: the rewrite is no longer reversible. *)
  let patched = List.map fst e.Emit.launch_patches in
  let addr =
    let rec find a =
      if List.mem a patched || Image.fetch img a = Instr.Halt then find (a + 1)
      else a
    in
    find 0
  in
  let broken =
    { e with Emit.image = Image.patch e.Emit.image [ (addr, Instr.Halt) ] }
  in
  let report = Verify.check ~original:img broken in
  Alcotest.(check bool) "rejected" false (Verify.ok report)

let test_verifier_rejects_dropped_live_out () =
  let img, r = Lazy.force rewrite_fixture in
  let e = r.Driver.emitted in
  (* Blank every exit block's dummy consumers; at least one side exit
     has live registers in this fixture, so the verifier must object. *)
  let strip (p : Pkg.t) =
    Pkg.map_blocks
      (fun b -> if b.Pkg.is_exit then { b with Pkg.live_out = [] } else b)
      p
  in
  let broken = { e with Emit.packages = List.map strip e.Emit.packages } in
  let report = Verify.check ~original:img broken in
  Alcotest.(check bool) "rejected" false (Verify.ok report);
  Alcotest.(check bool) "liveness violation" true
    (List.exists
       (fun (v : Verify.violation) ->
         String.length v.Verify.what >= 9
         && String.sub v.Verify.what 0 9 = "side exit")
       report.Verify.violations)

let test_verifier_rejects_missing_launch_patch () =
  let img, r = Lazy.force rewrite_fixture in
  let e = r.Driver.emitted in
  match e.Emit.launch_patches with
  | [] -> Alcotest.fail "fixture emitted no launch patches"
  | (orig, _) :: rest ->
    let broken =
      {
        e with
        Emit.launch_patches = rest;
        Emit.image = Image.patch e.Emit.image [ (orig, Image.fetch img orig) ];
      }
    in
    let report = Verify.check ~original:img broken in
    Alcotest.(check bool) "rejected" false (Verify.ok report)

(* --- degradation ladder --- *)

let gzip_image =
  lazy
    (let w = Option.get (Registry.find ~bench:"164.gzip" ~input:"A") in
     Program.layout (w.Registry.program ()))

let count_rung rung (r : Driver.rewrite) =
  List.length
    (List.filter (fun (d : Driver.demotion) -> d.Driver.rung = rung)
       r.Driver.demotions)

let test_ladder_drop_package () =
  (* gzip emits packages of varying size, so a budget below the largest
     demotes some packages while keeping the rest. *)
  let img = Lazy.force gzip_image in
  let baseline = Driver.rewrite img in
  let sizes =
    List.map Pkg.size baseline.Driver.packages |> List.sort compare
  in
  let budget = List.nth sizes (List.length sizes - 1) - 1 in
  let config =
    Config.with_fault (Plan.v ~max_package_instrs:budget "budget") Config.default
  in
  let r = Driver.rewrite ~config img in
  Alcotest.(check bool) "dropped some" true (count_rung Driver.Drop_package r > 0);
  Alcotest.(check bool) "kept some" true (List.length r.Driver.packages > 0);
  Alcotest.(check bool) "still verified" true (Verify.ok r.Driver.verification);
  let o = Emulator.run (Driver.rewritten_image r) in
  let b = Emulator.run img in
  Alcotest.(check int) "still equivalent" b.Emulator.checksum o.Emulator.checksum

let test_ladder_drop_region () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let config =
    Config.with_fault (Plan.v ~max_package_instrs:1 "collapse") Config.default
  in
  let r = Driver.rewrite ~config img in
  Alcotest.(check int) "nothing survives" 0 (List.length r.Driver.packages);
  Alcotest.(check bool) "regions demoted" true (count_rung Driver.Drop_region r > 0);
  Alcotest.(check int) "image unmodified" (Image.size img)
    (Image.size (Driver.rewritten_image r))

let test_ladder_fallback_image () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let config =
    Config.with_fault (Plan.v ~max_expansion_pct:0. "exhausted") Config.default
  in
  let r = Driver.rewrite ~config img in
  Alcotest.(check int) "fallback taken" 1 (count_rung Driver.Fallback_image r);
  Alcotest.(check int) "no package instructions" 0
    r.Driver.emitted.Emit.package_instructions;
  let o = Emulator.run (Driver.rewritten_image r) in
  Alcotest.(check int) "runs as the original" 0
    (compare o.Emulator.checksum (Emulator.run img).Emulator.checksum)

let test_degrade_off_raises () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let config =
    Config.with_degrade false
      (Config.with_fault (Plan.v ~max_package_instrs:1 "collapse") Config.default)
  in
  match Driver.rewrite ~config img with
  | _ -> Alcotest.fail "expected a typed error with degradation off"
  | exception Vacuum.Error.Error e ->
    Alcotest.(check string) "budget error stage" "build" e.Vacuum.Error.stage

(* --- truncation warning + counters --- *)

let test_truncation_surfaces () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:5_000 ~repeats:4) in
  let obs = Vp_obs.create () in
  let config = Config.v ~obs ~fuel:2_000 () in
  let p = Driver.profile ~config img in
  Alcotest.(check bool) "truncated" true p.Driver.truncated;
  Alcotest.(check bool) "structured warning" true
    (List.exists
       (fun (w : Vacuum.Error.t) -> w.Vacuum.Error.stage = "profile")
       p.Driver.warnings);
  Alcotest.(check (option int)) "counter bumped" (Some 1)
    (List.assoc_opt "profile.truncated" (Vp_obs.Sink.counters obs))

let test_fault_counters () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let obs = Vp_obs.create () in
  let config =
    Config.v ~obs ~fault:(Plan.v ~max_package_instrs:1 "collapse") ()
  in
  let (_ : Driver.rewrite) = Driver.rewrite ~config img in
  let counters = Vp_obs.Sink.counters obs in
  Alcotest.(check bool) "drop_package counted" true
    (match List.assoc_opt "degrade.drop-package" counters with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check bool) "drop_region counted" true
    (match List.assoc_opt "degrade.drop-region" counters with
    | Some n -> n > 0
    | None -> false)

(* --- chaos matrix --- *)

let test_chaos_matrix_oracle () =
  let img = Lazy.force gzip_image in
  let result = Chaos.matrix ~seeds:2 img in
  Alcotest.(check int) "all cells present"
    (2 * List.length Plan.presets)
    (List.length result.Chaos.cells);
  Alcotest.(check bool)
    (Printf.sprintf "every cell equivalent and verified\n%s"
       (Chaos.table result))
    true (Chaos.ok result);
  (* The matrix exercises every rung of the demotion ladder. *)
  let total f = List.fold_left (fun a c -> a + f c) 0 result.Chaos.cells in
  Alcotest.(check bool) "drop-package exercised" true
    (total (fun c -> c.Chaos.drop_package) > 0);
  Alcotest.(check bool) "drop-region exercised" true
    (total (fun c -> c.Chaos.drop_region) > 0);
  Alcotest.(check bool) "fallback exercised" true
    (total (fun c -> c.Chaos.fallback_image) > 0);
  (* Coverage degrades monotonically to zero, never to a crash: the
     clean plan's coverage bounds every faulted plan's. *)
  let clean_cov =
    List.filter_map
      (fun c ->
        if c.Chaos.plan.Plan.name = "clean" then Some c.Chaos.coverage_pct
        else None)
      result.Chaos.cells
    |> List.fold_left max 0.
  in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s coverage %.1f within clean %.1f + slack"
           c.Chaos.plan.Plan.name c.Chaos.coverage_pct clean_cov)
        true
        (c.Chaos.coverage_pct <= clean_cov +. 5.))
    result.Chaos.cells

let test_chaos_jobs_deterministic () =
  let img = Lazy.force gzip_image in
  let t1 = Chaos.table (Chaos.matrix ~seeds:2 ~jobs:1 img) in
  let t4 = Chaos.table (Chaos.matrix ~seeds:2 ~jobs:4 img) in
  Alcotest.(check string) "byte-identical 1 vs 4 jobs" t1 t4

(* --- fault hooks are free when disabled --- *)

let minor_words_during f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_profile_allocation_flat_without_fault () =
  let img =
    Program.layout (Progs.two_phase ~iters_per_phase:100_000 ~repeats:2)
  in
  (* Profiling allocates for telemetry and snapshot records, so it is
     not flat in run length by itself.  The pin here is that the fault
     layer adds nothing that scales with retirements: the growth from
     a 10k-instruction run to a 100k one must be the same whether the
     fault machinery is absent or present-but-clean.  A closure or box
     per retirement in the disabled hook would show up as tens of
     thousands of extra words in the delta. *)
  let grown config_of_fuel =
    (* Warm the decode memo, state arena and detector tables. *)
    ignore (Driver.profile ~config:(config_of_fuel 1_000) img);
    let short =
      minor_words_during (fun () ->
          ignore (Driver.profile ~config:(config_of_fuel 10_000) img))
    in
    let long =
      minor_words_during (fun () ->
          ignore (Driver.profile ~config:(config_of_fuel 100_000) img))
    in
    long -. short
  in
  let without = grown (fun fuel -> Config.v ~fuel ()) in
  let clean = grown (fun fuel -> Config.v ~fuel ~fault:Plan.clean ()) in
  Alcotest.(check bool)
    (Printf.sprintf "disabled hooks free (growth %.0f without, %.0f clean)"
       without clean)
    true
    (Float.abs (clean -. without) < 10_000.)

let () =
  Alcotest.run "vp_fault"
    [
      ( "rng streams",
        [
          Alcotest.test_case "keyed deterministic" `Quick
            test_stream_keyed_deterministic;
          Alcotest.test_case "schedule independent" `Quick
            test_stream_schedule_independent;
          Alcotest.test_case "seed non-negative" `Quick
            test_stream_seed_nonnegative;
        ] );
      ( "inject",
        [
          Alcotest.test_case "clean is identity" `Quick
            test_inject_clean_is_identity;
          Alcotest.test_case "deterministic" `Quick test_inject_deterministic;
          Alcotest.test_case "saturate bounds" `Quick test_inject_saturate_bounds;
          Alcotest.test_case "truncate" `Quick test_inject_truncate;
          Alcotest.test_case "duplicate and alias" `Quick
            test_inject_duplicate_and_alias;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts pipeline output" `Quick
            test_verifier_accepts_pipeline_output;
          Alcotest.test_case "rejects unresolved label" `Quick
            test_verifier_rejects_unresolved_label;
          Alcotest.test_case "rejects tampered original" `Quick
            test_verifier_rejects_tampered_original_code;
          Alcotest.test_case "rejects dropped live-out" `Quick
            test_verifier_rejects_dropped_live_out;
          Alcotest.test_case "rejects missing launch patch" `Quick
            test_verifier_rejects_missing_launch_patch;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "drop package" `Quick test_ladder_drop_package;
          Alcotest.test_case "drop region" `Quick test_ladder_drop_region;
          Alcotest.test_case "fallback image" `Quick test_ladder_fallback_image;
          Alcotest.test_case "degrade off raises" `Quick test_degrade_off_raises;
          Alcotest.test_case "truncation surfaces" `Quick test_truncation_surfaces;
          Alcotest.test_case "fault counters" `Quick test_fault_counters;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "matrix oracle" `Slow test_chaos_matrix_oracle;
          Alcotest.test_case "jobs deterministic" `Slow
            test_chaos_jobs_deterministic;
        ] );
      ( "hooks free when disabled",
        [
          Alcotest.test_case "profile allocation flat" `Quick
            test_profile_allocation_flat_without_fault;
        ] );
    ]
