(* Tests for vp_hsd: BBB mechanics (hits, candidacy, contention,
   refresh/clear), HDC detection math, and end-to-end detection on
   emulated phased programs. *)

module Config = Vp_hsd.Config
module Bbb = Vp_hsd.Bbb
module Snapshot = Vp_hsd.Snapshot
module Detector = Vp_hsd.Detector
module Progs = Vp_test_support.Progs
module Program = Vp_prog.Program
module Emulator = Vp_exec.Emulator

let tiny = Config.tiny

let test_config_validation () =
  (match Config.validate Config.default with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Config.validate { Config.default with Config.sets = 0 } with
  | Ok () -> Alcotest.fail "zero sets accepted"
  | Error _ -> ());
  match Config.validate { Config.default with Config.candidate_threshold = 1 lsl 9 } with
  | Ok () -> Alcotest.fail "threshold beyond counter accepted"
  | Error _ -> ()

let test_bbb_candidacy () =
  let bbb = Bbb.create tiny in
  (* Below threshold: non-candidate. *)
  for _ = 1 to tiny.Config.candidate_threshold - 1 do
    match Bbb.record bbb ~pc:100 ~taken:true with
    | Bbb.Non_candidate -> ()
    | _ -> Alcotest.fail "expected non-candidate below threshold"
  done;
  (match Bbb.record bbb ~pc:100 ~taken:true with
  | Bbb.Candidate -> ()
  | _ -> Alcotest.fail "expected candidate at threshold");
  Alcotest.(check int) "one candidate" 1 (Bbb.candidates bbb)

let test_bbb_contention_drops () =
  (* tiny has 1 set x 4 ways; five hot branches contend. *)
  let bbb = Bbb.create tiny in
  let make_candidate pc =
    for _ = 1 to tiny.Config.candidate_threshold do
      ignore (Bbb.record bbb ~pc ~taken:true)
    done
  in
  List.iter make_candidate [ 10; 11; 12; 13 ];
  Alcotest.(check int) "four candidates" 4 (Bbb.candidates bbb);
  (match Bbb.record bbb ~pc:14 ~taken:true with
  | Bbb.Dropped -> ()
  | _ -> Alcotest.fail "fifth branch should be dropped");
  Alcotest.(check bool) "not tracked" false (Bbb.tracked bbb ~pc:14)

let test_bbb_noncandidate_eviction () =
  let bbb = Bbb.create tiny in
  (* Three candidates and one non-candidate. *)
  List.iter
    (fun pc ->
      for _ = 1 to tiny.Config.candidate_threshold do
        ignore (Bbb.record bbb ~pc ~taken:true)
      done)
    [ 10; 11; 12 ];
  ignore (Bbb.record bbb ~pc:13 ~taken:true);
  (* A new branch evicts the non-candidate, not a candidate. *)
  (match Bbb.record bbb ~pc:14 ~taken:true with
  | Bbb.Non_candidate -> ()
  | _ -> Alcotest.fail "expected installation as non-candidate");
  Alcotest.(check bool) "13 evicted" false (Bbb.tracked bbb ~pc:13);
  Alcotest.(check bool) "candidates kept" true (Bbb.tracked bbb ~pc:10)

let test_bbb_refresh_clears_noncandidates_only () =
  let bbb = Bbb.create tiny in
  for _ = 1 to tiny.Config.candidate_threshold do
    ignore (Bbb.record bbb ~pc:10 ~taken:true)
  done;
  ignore (Bbb.record bbb ~pc:11 ~taken:true);
  Bbb.refresh bbb;
  (* The candidate keeps its counts. *)
  let entries = Bbb.snapshot_entries bbb in
  Alcotest.(check int) "one snapshot entry" 1 (List.length entries);
  let e = List.hd entries in
  Alcotest.(check int) "counts kept" tiny.Config.candidate_threshold e.Snapshot.executed;
  (* The non-candidate was zeroed: threshold more hits needed again. *)
  let v = Bbb.record bbb ~pc:11 ~taken:true in
  Alcotest.(check bool) "still non-candidate" true (v = Bbb.Non_candidate)

let test_bbb_clear () =
  let bbb = Bbb.create tiny in
  for _ = 1 to 100 do
    ignore (Bbb.record bbb ~pc:10 ~taken:true)
  done;
  Bbb.clear bbb;
  Alcotest.(check int) "empty" 0 (Bbb.occupancy bbb);
  Alcotest.(check (list int)) "no entries" []
    (List.map (fun e -> e.Snapshot.pc) (Bbb.snapshot_entries bbb))

let test_bbb_snapshot_sorted () =
  let bbb = Bbb.create tiny in
  List.iter
    (fun pc ->
      for _ = 1 to tiny.Config.candidate_threshold do
        ignore (Bbb.record bbb ~pc ~taken:(pc mod 2 = 0))
      done)
    [ 13; 10; 12 ];
  let pcs = List.map (fun e -> e.Snapshot.pc) (Bbb.snapshot_entries bbb) in
  Alcotest.(check (list int)) "ascending" [ 10; 12; 13 ] pcs

let test_snapshot_bias () =
  let e pc executed taken = { Snapshot.pc; executed; taken } in
  Alcotest.(check bool) "taken biased" true (Snapshot.bias (e 0 100 95) = Snapshot.Taken);
  Alcotest.(check bool) "not-taken biased" true
    (Snapshot.bias (e 0 100 5) = Snapshot.Not_taken);
  Alcotest.(check bool) "unbiased" true (Snapshot.bias (e 0 100 50) = Snapshot.Unbiased)

(* Feed a synthetic branch stream: [spec] is a list of (pc, taken)
   thunks cycled [n] times. *)
let feed detector n cycle =
  for i = 0 to n - 1 do
    let pc, taken = List.nth cycle (i mod List.length cycle) in
    Detector.on_branch detector ~pc ~taken
  done

let test_detector_detects_stable_loop () =
  let d = Detector.create ~config:tiny () in
  feed d 4000 [ (100, true); (101, false); (102, true) ];
  Alcotest.(check bool) "detected" true (Detector.detections d > 0);
  let snaps = Detector.snapshots d in
  Alcotest.(check bool) "recorded" true (snaps <> []);
  let first = List.hd snaps in
  List.iter
    (fun pc ->
      Alcotest.(check bool)
        (Printf.sprintf "pc %d captured" pc)
        true
        (List.mem pc (Snapshot.branch_pcs first)))
    [ 100; 101; 102 ]

let test_detector_hooks () =
  (* The telemetry callbacks fire once per counter bump, stamped with
     the retired-branch index the snapshot itself records. *)
  let d = Detector.create ~config:tiny () in
  let detects = ref 0 and rearm_count = ref 0 and stamps = ref [] in
  Detector.set_hooks d
    ~on_detect:(fun ~branches:_ ~detections -> detects := detections)
    ~on_record:(fun ~branches ~id -> stamps := (branches, id) :: !stamps)
    ~on_rearm:(fun ~branches:_ ~rearms -> rearm_count := rearms);
  feed d 8000 [ (100, true); (101, false) ];
  Alcotest.(check int) "detect hook saw every detection"
    (Detector.detections d) !detects;
  Alcotest.(check int) "rearm hook saw every rearm" (Detector.rearms d)
    !rearm_count;
  let stamps = List.rev !stamps in
  Alcotest.(check int) "record hook saw every recording"
    (Detector.recordings d) (List.length stamps);
  List.iter2
    (fun (branches, id) (snap : Snapshot.t) ->
      Alcotest.(check int) "stamp = detected_at" snap.Snapshot.detected_at branches;
      Alcotest.(check int) "id = snapshot id" snap.Snapshot.id id)
    stamps (Detector.snapshots d);
  (* Partial re-installation keeps the other hooks in place. *)
  let before = !detects in
  Detector.set_hooks d ~on_rearm:(fun ~branches:_ ~rearms:_ -> ());
  feed d 8000 [ (100, true); (101, false) ];
  Alcotest.(check bool) "detect hook survives partial set_hooks" true
    (!detects > before)

let test_detector_redetects_same_phase () =
  let d = Detector.create ~config:tiny () in
  feed d 8000 [ (100, true); (101, false) ];
  (* Raw behaviour records the same hot spot repeatedly. *)
  Alcotest.(check bool) "multiple recordings" true (Detector.recordings d > 1)

let test_detector_history_suppresses () =
  let same a b =
    List.sort compare (Snapshot.branch_pcs a) = List.sort compare (Snapshot.branch_pcs b)
  in
  let d = Detector.create ~config:tiny ~history_size:1 ~same () in
  feed d 8000 [ (100, true); (101, false) ];
  Alcotest.(check bool) "many detections" true (Detector.detections d > 1);
  Alcotest.(check int) "single recording" 1 (Detector.recordings d)

let test_detector_phase_transition () =
  let d = Detector.create ~config:tiny () in
  feed d 4000 [ (100, true); (101, false) ];
  feed d 4000 [ (200, false); (201, true) ];
  let snaps = Detector.snapshots d in
  let has pcs snap = List.exists (fun pc -> List.mem pc pcs) (Snapshot.branch_pcs snap) in
  Alcotest.(check bool) "phase A seen" true (List.exists (has [ 100; 101 ]) snaps);
  Alcotest.(check bool) "phase B seen" true (List.exists (has [ 200; 201 ]) snaps);
  (* Extents are monotone and non-overlapping. *)
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "ordered" true
        (a.Snapshot.ended_at <= b.Snapshot.detected_at + 1);
      check_monotone rest
    | _ -> ()
  in
  check_monotone snaps;
  List.iter
    (fun s ->
      Alcotest.(check bool) "extent positive" true (Snapshot.extent s >= 0))
    snaps

let test_detector_cold_noise_no_detection () =
  let d = Detector.create ~config:tiny () in
  (* Every branch unique: nothing ever becomes a candidate. *)
  for i = 0 to 20_000 do
    Detector.on_branch d ~pc:(1000 + i) ~taken:(i mod 2 = 0)
  done;
  Alcotest.(check int) "no detection" 0 (Detector.detections d)

let test_detector_on_emulated_two_phase () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:3000 ~repeats:3) in
  let d = Detector.create ~config:tiny () in
  let o = Emulator.run ~on_branch:(fun ~pc ~taken -> Detector.on_branch d ~pc ~taken) img in
  Alcotest.(check bool) "halted" true o.Emulator.halted;
  Alcotest.(check int) "branches counted" o.Emulator.cond_branches
    (Detector.branches_seen d);
  Alcotest.(check bool) "hot spots found" true (Detector.recordings d >= 2);
  (* Snapshot branch pcs must be real conditional branches of the image. *)
  List.iter
    (fun snap ->
      List.iter
        (fun pc ->
          match Vp_prog.Image.fetch img pc with
          | Vp_isa.Instr.Br _ -> ()
          | i ->
            Alcotest.failf "snapshot pc 0x%x is %s, not a branch" pc
              (Vp_isa.Instr.to_string i))
        (Snapshot.branch_pcs snap))
    (Detector.snapshots d)

let prop_detector_extents_well_formed =
  QCheck.Test.make ~name:"snapshot extents well-formed under random streams" ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Vp_util.Rng.create ~seed in
      let d = Detector.create ~config:tiny () in
      (* A few random phases of random loops. *)
      for _ = 0 to 3 do
        let base = 100 * (1 + Vp_util.Rng.int rng 50) in
        let width = 1 + Vp_util.Rng.int rng 4 in
        let len = 1000 + Vp_util.Rng.int rng 3000 in
        for i = 0 to len - 1 do
          Detector.on_branch d
            ~pc:(base + (i mod width))
            ~taken:(Vp_util.Rng.bool rng 0.8)
        done
      done;
      List.for_all
        (fun s ->
          s.Snapshot.detected_at <= s.Snapshot.ended_at
          && s.Snapshot.branches <> []
          && List.for_all (fun e -> e.Snapshot.taken <= e.Snapshot.executed)
               s.Snapshot.branches)
        (Detector.snapshots d))

let () =
  Alcotest.run "vp_hsd"
    [
      ( "bbb",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "candidacy" `Quick test_bbb_candidacy;
          Alcotest.test_case "contention drops" `Quick test_bbb_contention_drops;
          Alcotest.test_case "non-candidate eviction" `Quick test_bbb_noncandidate_eviction;
          Alcotest.test_case "refresh" `Quick test_bbb_refresh_clears_noncandidates_only;
          Alcotest.test_case "clear" `Quick test_bbb_clear;
          Alcotest.test_case "snapshot sorted" `Quick test_bbb_snapshot_sorted;
          Alcotest.test_case "snapshot bias" `Quick test_snapshot_bias;
        ] );
      ( "detector",
        [
          Alcotest.test_case "stable loop" `Quick test_detector_detects_stable_loop;
          Alcotest.test_case "telemetry hooks" `Quick test_detector_hooks;
          Alcotest.test_case "re-detection" `Quick test_detector_redetects_same_phase;
          Alcotest.test_case "history suppression" `Quick test_detector_history_suppresses;
          Alcotest.test_case "phase transition" `Quick test_detector_phase_transition;
          Alcotest.test_case "cold noise" `Quick test_detector_cold_noise_no_detection;
          Alcotest.test_case "emulated two-phase" `Quick test_detector_on_emulated_two_phase;
          QCheck_alcotest.to_alcotest prop_detector_extents_well_formed;
        ] );
    ]
