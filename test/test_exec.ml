(* Tests for vp_exec: architectural semantics end-to-end through the
   builder, layout and emulator. *)

module Program = Vp_prog.Program
module Image = Vp_prog.Image
module Emulator = Vp_exec.Emulator
module State = Vp_exec.State
module Progs = Vp_test_support.Progs

let run p = Emulator.run (Program.layout p)

let test_sum_loop () =
  let o = run (Progs.sum_to_n 100) in
  Alcotest.(check bool) "halted" true o.Emulator.halted;
  Alcotest.(check int) "sum 0..99" 4950 o.Emulator.result

let test_sum_zero_iterations () =
  let o = run (Progs.sum_to_n 0) in
  Alcotest.(check int) "empty loop" 0 o.Emulator.result

let test_factorial_recursion () =
  let o = run (Progs.factorial 10) in
  Alcotest.(check int) "10!" 3628800 o.Emulator.result

let test_factorial_base_case () =
  let o = run (Progs.factorial 1) in
  Alcotest.(check int) "1!" 1 o.Emulator.result

let test_deep_recursion_stack () =
  let o = run (Progs.factorial 200) in
  (* The value overflows; what matters is that 200 nested frames work. *)
  Alcotest.(check bool) "halted" true o.Emulator.halted

let test_call_chain () =
  let o = run (Progs.call_chain 5) in
  (* gamma: 5+100=105; beta: 210; alpha: 211 *)
  Alcotest.(check int) "chained" 211 o.Emulator.result

let test_spill_correctness () =
  let o = run (Progs.spill_heavy 30) in
  Alcotest.(check int) "sum with spills" (30 * 31 / 2) o.Emulator.result

let test_global_rw () =
  let o = run (Progs.global_rw ()) in
  Alcotest.(check int) "globals" (2 * (5 + 6 + 7)) o.Emulator.result

let test_two_phase_runs () =
  let o = run (Progs.two_phase ~iters_per_phase:50 ~repeats:3) in
  Alcotest.(check bool) "halted" true o.Emulator.halted;
  Alcotest.(check bool) "substantial work" true (o.Emulator.instructions > 1000)

let test_fuel_exhaustion () =
  (* An infinite loop: while (0 == 0). *)
  let module B = Vp_prog.Builder in
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let z = B.vreg fb in
      B.li fb z 0;
      B.while_ fb (fun () -> (Vp_isa.Op.Eq, z, B.K 0)) (fun () -> ());
      B.halt fb);
  let o = Emulator.run ~fuel:10_000 (Program.layout (B.program b ~entry:"main")) in
  Alcotest.(check bool) "not halted" false o.Emulator.halted;
  Alcotest.(check int) "fuel consumed" 10_000 o.Emulator.instructions

let test_memory_fault () =
  let module B = Vp_prog.Builder in
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let v = B.vreg fb in
      B.load_abs fb v 999_999_999;
      B.halt fb);
  let img = Program.layout (B.program b ~entry:"main") in
  Alcotest.(check bool) "fault raised" true
    (try
       ignore (Emulator.run img);
       false
     with State.Fault _ -> true)

(* Builder control-flow surface not exercised by the shared programs:
   break/continue, raw labels and frame locals. *)
let test_builder_break_continue () =
  let module B = Vp_prog.Builder in
  let module Op = Vp_isa.Op in
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      let m = B.vreg fb in
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 100) (fun () ->
          B.when_ fb (Op.Eq, i, B.K 7) (fun () -> B.break_ fb);
          B.alu fb Op.Rem m i (B.K 2);
          B.when_ fb (Op.Eq, m, B.K 0) (fun () -> B.continue_ fb);
          B.alu fb Op.Add acc acc (B.V i));
      B.ret fb (Some acc);
      B.halt fb);
  let o = Emulator.run (Program.layout (B.program b ~entry:"main")) in
  (* Odd values below 7: 1 + 3 + 5. *)
  Alcotest.(check int) "break/continue semantics" 9 o.Emulator.result

let test_builder_raw_labels () =
  (* An irregular shape built from goto/branch/place_label: a bottom-
     tested loop. *)
  let module B = Vp_prog.Builder in
  let module Op = Vp_isa.Op in
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let acc = B.vreg fb in
      let i = B.vreg fb in
      B.li fb acc 0;
      B.li fb i 0;
      let head = B.new_label fb in
      B.place_label fb head;
      B.alu fb Op.Add acc acc (B.V i);
      B.addi fb i i 1;
      B.branch fb (Op.Lt, i, B.K 10) head;
      let out = B.new_label fb in
      B.goto fb out;
      (* Dead code the goto skips. *)
      B.li fb acc 999;
      B.place_label fb out;
      B.ret fb (Some acc);
      B.halt fb);
  let o = Emulator.run (Program.layout (B.program b ~entry:"main")) in
  Alcotest.(check int) "bottom-tested loop" 45 o.Emulator.result

let test_builder_frame_locals () =
  let module B = Vp_prog.Builder in
  let module Op = Vp_isa.Op in
  let b = B.create () in
  B.func b "main" ~nargs:0 (fun fb _ ->
      let buf = B.local fb ~words:8 in
      let base = B.vreg fb in
      let i = B.vreg fb in
      let v = B.vreg fb in
      let acc = B.vreg fb in
      B.local_addr fb base buf;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 8) (fun () ->
          B.alu fb Op.Mul v i (B.V i);
          B.alu fb Op.Add v v (B.K 1);
          let slot = B.vreg fb in
          B.alu fb Op.Add slot base (B.V i);
          B.store fb v ~base:slot ~off:0);
      B.li fb acc 0;
      B.for_ fb i ~from:(B.K 0) ~below:(B.K 8) (fun () ->
          let slot = B.vreg fb in
          B.alu fb Op.Add slot base (B.V i);
          B.load fb v ~base:slot ~off:0;
          B.alu fb Op.Add acc acc (B.V v));
      B.ret fb (Some acc);
      B.halt fb);
  let o = Emulator.run (Program.layout (B.program b ~entry:"main")) in
  (* sum of i^2 + 1 for i in 0..7 = 140 + 8. *)
  Alcotest.(check int) "frame-local array" 148 o.Emulator.result

let test_branch_observation () =
  let img = Program.layout (Progs.biased_branch ~iters:1000 ~bias_mod:10) in
  let seen = ref 0 in
  let taken_count = ref 0 in
  let o =
    Emulator.run
      ~on_branch:(fun ~pc:_ ~taken ->
        incr seen;
        if taken then incr taken_count)
      img
  in
  Alcotest.(check int) "observer count matches outcome" o.Emulator.cond_branches !seen;
  Alcotest.(check bool) "some taken" true (!taken_count > 0);
  Alcotest.(check bool) "some not taken" true (!taken_count < !seen)

let test_aggregate_profile_bias () =
  let img = Program.layout (Progs.biased_branch ~iters:1000 ~bias_mod:10) in
  let profile = Emulator.aggregate_branch_profile img in
  (* Find the if-branch: it executes 1000 times, taken 900 (the 'else'
     arm is the common direction). *)
  let found = ref false in
  Vp_exec.Branch_profile.iter
    (fun ~pc:_ ~executed ~taken ->
      if executed = 1000 && taken = 900 then found := true)
    profile;
  Alcotest.(check bool) "biased branch profiled" true !found

let test_event_stream_consistency () =
  let img = Program.layout (Progs.sum_to_n 20) in
  let events = ref [] in
  let o = Emulator.run ~on_event:(fun e -> events := e :: !events) img in
  let events = List.rev !events in
  Alcotest.(check int) "one event per instruction" o.Emulator.instructions
    (List.length events);
  (* next_pc chains: each event's next_pc equals the next event's pc. *)
  let rec chain = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check int) "pc chain" b.Emulator.pc a.Emulator.next_pc;
      chain rest
    | _ -> ()
  in
  chain events

let test_package_instruction_accounting () =
  (* Redirect the entry through appended code and check the counters. *)
  let img = Program.layout (Progs.sum_to_n 5) in
  let entry_instr = Image.fetch img img.Image.entry in
  let img2, base =
    Image.append img ~name:"pkg" [| entry_instr; Vp_isa.Instr.Jmp { target = Vp_isa.Instr.Addr (img.Image.entry + 1) } |]
  in
  let img3 =
    Image.patch img2 [ (img2.Image.entry, Vp_isa.Instr.Jmp { target = Vp_isa.Instr.Addr base }) ]
  in
  let o = Emulator.run img3 in
  Alcotest.(check bool) "halted" true o.Emulator.halted;
  Alcotest.(check int) "package instructions" 2 o.Emulator.package_instructions

let test_checksum_stability () =
  let a = run (Progs.two_phase ~iters_per_phase:20 ~repeats:2) in
  let b = run (Progs.two_phase ~iters_per_phase:20 ~repeats:2) in
  Alcotest.(check int) "deterministic checksum" a.Emulator.checksum b.Emulator.checksum;
  let c = run (Progs.two_phase ~iters_per_phase:21 ~repeats:2) in
  Alcotest.(check bool) "different program, different checksum" true
    (a.Emulator.checksum <> c.Emulator.checksum)

(* ------------------------------------------------------------------ *)
(* The decoded form. *)

module Decode = Vp_exec.Decode
module Instr = Vp_isa.Instr
module Reg = Vp_isa.Reg

let test_decode_tables_match_instr () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:5 ~repeats:2) in
  let d = Decode.of_image img in
  Alcotest.(check int) "size" (Array.length img.Image.code) (Decode.size d);
  Array.iteri
    (fun pc i ->
      let regs l = List.map Reg.to_int l in
      Alcotest.(check (list int))
        (Printf.sprintf "uses at pc %d" pc)
        (regs (Instr.uses i))
        (regs (Decode.uses_pc d pc));
      Alcotest.(check (list int))
        (Printf.sprintf "defs at pc %d" pc)
        (regs (Instr.defs i))
        (regs (Decode.defs_pc d pc));
      Alcotest.(check int)
        (Printf.sprintf "latency at pc %d" pc)
        (Instr.latency i) d.Decode.latency.(pc);
      Alcotest.(check bool)
        (Printf.sprintf "fu at pc %d" pc)
        true
        (Instr.fu i = d.Decode.fu.(pc)))
    img.Image.code

let test_decode_memoizes_on_identity () =
  let img = Program.layout (Progs.sum_to_n 10) in
  let d1 = Decode.of_image img in
  let d2 = Decode.of_image img in
  Alcotest.(check bool) "same physical image, same decode" true (d1 == d2)

(* Unresolved [Label] targets must fault lazily — exactly when the
   instruction executes and (for branches) only when taken, matching
   the boxed interpreter's behaviour. *)
let unresolved_branch_image ~taken =
  let r = Reg.of_int 8 in
  {
    Image.code =
      [|
        Instr.Li { dst = r; imm = (if taken then 0 else 1) };
        Instr.Br
          {
            cond = Vp_isa.Op.Eq;
            src1 = r;
            src2 = Reg.zero;
            target = Instr.Label "nowhere";
          };
        Instr.Halt;
      |];
    syms = [ { Image.name = "main"; start = 0; len = 3 } ];
    entry = 0;
    orig_limit = 3;
    data_init = [];
    data_break = 0;
  }

let test_unresolved_branch_not_taken_runs () =
  let o = Emulator.run (unresolved_branch_image ~taken:false) in
  Alcotest.(check bool) "halted" true o.Emulator.halted;
  Alcotest.(check int) "branch counted" 1 o.Emulator.cond_branches

let test_unresolved_branch_taken_faults () =
  Alcotest.check_raises "taken unresolved branch"
    (Vp_util.Error.Error
       {
         stage = "emulator";
         what = "unresolved label nowhere";
         pc = None;
         label = Some "nowhere";
         workload = None;
       }) (fun () ->
      ignore (Emulator.run (unresolved_branch_image ~taken:true)))

let test_unresolved_jmp_faults () =
  let img =
    {
      Image.code = [| Instr.Jmp { target = Instr.Label "gone" }; Instr.Halt |];
      syms = [ { Image.name = "main"; start = 0; len = 2 } ];
      entry = 0;
      orig_limit = 2;
      data_init = [];
      data_break = 0;
    }
  in
  Alcotest.check_raises "unresolved jmp"
    (Vp_util.Error.Error
       {
         stage = "emulator";
         what = "unresolved label gone";
         pc = None;
         label = Some "gone";
         workload = None;
       }) (fun () ->
      ignore (Emulator.run img))

(* The hot loop must not allocate per retired instruction: minor-heap
   allocation for a 10x longer run stays flat (the decoded form is
   memoized, the memory array comes from the arena, and the loop's
   scratch is unboxed). *)
let minor_words_during f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_run_allocation_flat () =
  let img =
    Program.layout (Progs.two_phase ~iters_per_phase:100_000 ~repeats:2)
  in
  (* Warm the decode memo and the state arena. *)
  ignore (Emulator.run ~fuel:1_000 img);
  let short = minor_words_during (fun () -> ignore (Emulator.run ~fuel:10_000 img)) in
  let long =
    minor_words_during (fun () -> ignore (Emulator.run ~fuel:100_000 img))
  in
  (* 90k extra instructions; even one boxed word each would show up as
     ~90k words.  Allow generous constant slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "allocation flat (short %.0f, long %.0f)" short long)
    true
    (long -. short < 10_000.)

let prop_random_programs_halt =
  QCheck.Test.make ~name:"random arithmetic programs halt deterministically" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let img = Program.layout (Progs.random_arith ~seed) in
      let a = Emulator.run img in
      let b = Emulator.run img in
      a.Emulator.halted && a.Emulator.checksum = b.Emulator.checksum
      && a.Emulator.result = b.Emulator.result)

let prop_spill_sum_matches_closed_form =
  QCheck.Test.make ~name:"spill-heavy sums match closed form" ~count:20
    QCheck.(int_range 1 30)
    (fun n ->
      let o = Emulator.run (Program.layout (Progs.spill_heavy n)) in
      o.Emulator.result = n * (n + 1) / 2)

(* ------------------------------------------------------------------ *)
(* Compiled backend: block partitioning, memoization, fuel-boundary
   parity with the decoded oracle, and allocation flatness of the
   threaded-code retire loop. *)

let test_compile_memoizes_on_identity () =
  let img = Program.layout (Progs.sum_to_n 10) in
  let c1 = Vp_exec.Compile.of_image img in
  let c2 = Vp_exec.Compile.of_image img in
  Alcotest.(check bool) "same physical image, same compile" true (c1 == c2)

let test_compile_blocks_partition_image () =
  let img = Program.layout (Progs.two_phase ~iters_per_phase:10 ~repeats:2) in
  let c = Vp_exec.Compile.of_image img in
  let n = Array.length img.Image.code in
  let nb = Vp_exec.Compile.block_count c in
  Alcotest.(check bool) "has blocks" true (nb > 0);
  let covered = Array.make n 0 in
  for b = 0 to nb - 1 do
    let start, len = Vp_exec.Compile.block_bounds c b in
    Alcotest.(check bool)
      (Printf.sprintf "block %d in range" b)
      true
      (start >= 0 && len > 0 && start + len <= n);
    Alcotest.(check int)
      (Printf.sprintf "leader of block %d maps back" b)
      b
      (Vp_exec.Compile.block_of_pc c start);
    for pc = start to start + len - 1 do
      covered.(pc) <- covered.(pc) + 1;
      if pc > start then
        Alcotest.(check int)
          (Printf.sprintf "pc %d is mid-block" pc)
          (-1)
          (Vp_exec.Compile.block_of_pc c pc)
    done
  done;
  Array.iteri
    (fun pc k ->
      Alcotest.(check int)
        (Printf.sprintf "pc %d covered exactly once" pc)
        1 k)
    covered

(* Every fuel value from 0 up past the program's full length: each one
   lands the cutoff somewhere else relative to the block boundaries, so
   this sweeps the per-block fast path, the boundary interpreter and
   the exhaustion edge against the decoded core. *)
let test_compiled_fuel_boundary_parity () =
  let img = Program.layout (Progs.factorial 8) in
  let d = Decode.of_image img in
  let c = Vp_exec.Compile.of_image img in
  let full = (Emulator.run_decoded d).Emulator.instructions in
  for fuel = 0 to full + 5 do
    let a = Emulator.run_decoded ~fuel d in
    let b = Emulator.run_compiled ~fuel c in
    let tag what = Printf.sprintf "fuel %d: %s" fuel what in
    Alcotest.(check int) (tag "instructions") a.Emulator.instructions
      b.Emulator.instructions;
    Alcotest.(check int) (tag "cond branches") a.Emulator.cond_branches
      b.Emulator.cond_branches;
    Alcotest.(check bool) (tag "halted") a.Emulator.halted b.Emulator.halted;
    Alcotest.(check int) (tag "checksum") a.Emulator.checksum
      b.Emulator.checksum;
    Alcotest.(check int) (tag "final pc") a.Emulator.final_pc
      b.Emulator.final_pc
  done

let test_compiled_unresolved_branch_parity () =
  let o =
    Emulator.run_backend ~backend:Emulator.Compiled
      (unresolved_branch_image ~taken:false)
  in
  Alcotest.(check bool) "halted" true o.Emulator.halted;
  Alcotest.(check int) "branch counted" 1 o.Emulator.cond_branches;
  Alcotest.check_raises "taken unresolved branch"
    (Vp_util.Error.Error
       {
         stage = "emulator";
         what = "unresolved label nowhere";
         pc = None;
         label = Some "nowhere";
         workload = None;
       }) (fun () ->
      ignore
        (Emulator.run_backend ~backend:Emulator.Compiled
           (unresolved_branch_image ~taken:true)))

let test_compiled_allocation_flat () =
  let img =
    Program.layout (Progs.two_phase ~iters_per_phase:100_000 ~repeats:2)
  in
  let run fuel = ignore (Emulator.run_backend ~backend:Emulator.Compiled ~fuel img) in
  (* Warm the compile memo and the state arena. *)
  run 1_000;
  let short = minor_words_during (fun () -> run 10_000) in
  let long = minor_words_during (fun () -> run 100_000) in
  Alcotest.(check bool)
    (Printf.sprintf "compiled allocation flat (short %.0f, long %.0f)" short
       long)
    true
    (long -. short < 10_000.)

(* Same flatness with the observed compiled variant driving both
   observer channels — the fused sink passes unboxed labeled ints, so
   attaching observers must not reintroduce per-retirement boxing. *)
let test_compiled_observed_allocation_flat () =
  let img =
    Program.layout (Progs.two_phase ~iters_per_phase:100_000 ~repeats:2)
  in
  let branches = ref 0 in
  let retired = ref 0 in
  let on_branch ~pc:_ ~taken:_ = incr branches in
  let on_retire ~pc:_ ~taken:_ ~next_pc:_ ~mem_addr:_ = incr retired in
  let run fuel =
    ignore
      (Emulator.run_backend ~backend:Emulator.Compiled ~fuel ~on_branch
         ~on_retire img)
  in
  run 1_000;
  let short = minor_words_during (fun () -> run 10_000) in
  let long = minor_words_during (fun () -> run 100_000) in
  Alcotest.(check bool)
    (Printf.sprintf "observed compiled allocation flat (short %.0f, long %.0f)"
       short long)
    true
    (long -. short < 10_000.);
  Alcotest.(check bool) "observers fired" true (!branches > 0 && !retired > 0)

let () =
  Alcotest.run "vp_exec"
    [
      ( "semantics",
        [
          Alcotest.test_case "sum loop" `Quick test_sum_loop;
          Alcotest.test_case "zero iterations" `Quick test_sum_zero_iterations;
          Alcotest.test_case "factorial" `Quick test_factorial_recursion;
          Alcotest.test_case "factorial base" `Quick test_factorial_base_case;
          Alcotest.test_case "deep recursion" `Quick test_deep_recursion_stack;
          Alcotest.test_case "call chain" `Quick test_call_chain;
          Alcotest.test_case "spills" `Quick test_spill_correctness;
          Alcotest.test_case "globals" `Quick test_global_rw;
          Alcotest.test_case "two-phase runs" `Quick test_two_phase_runs;
        ] );
      ( "machine",
        [
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "memory fault" `Quick test_memory_fault;
          Alcotest.test_case "package accounting" `Quick test_package_instruction_accounting;
          Alcotest.test_case "checksum stability" `Quick test_checksum_stability;
        ] );
      ( "builder-control",
        [
          Alcotest.test_case "break/continue" `Quick test_builder_break_continue;
          Alcotest.test_case "raw labels" `Quick test_builder_raw_labels;
          Alcotest.test_case "frame locals" `Quick test_builder_frame_locals;
        ] );
      ( "decode",
        [
          Alcotest.test_case "tables match Instr" `Quick
            test_decode_tables_match_instr;
          Alcotest.test_case "memoized by identity" `Quick
            test_decode_memoizes_on_identity;
          Alcotest.test_case "unresolved branch not taken" `Quick
            test_unresolved_branch_not_taken_runs;
          Alcotest.test_case "unresolved branch taken" `Quick
            test_unresolved_branch_taken_faults;
          Alcotest.test_case "unresolved jmp" `Quick test_unresolved_jmp_faults;
          Alcotest.test_case "zero per-instruction allocation" `Quick
            test_run_allocation_flat;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "memoized by identity" `Quick
            test_compile_memoizes_on_identity;
          Alcotest.test_case "blocks partition the image" `Quick
            test_compile_blocks_partition_image;
          Alcotest.test_case "fuel boundary parity" `Quick
            test_compiled_fuel_boundary_parity;
          Alcotest.test_case "unresolved branch parity" `Quick
            test_compiled_unresolved_branch_parity;
          Alcotest.test_case "zero per-instruction allocation" `Quick
            test_compiled_allocation_flat;
          Alcotest.test_case "zero per-instruction allocation (observed)"
            `Quick test_compiled_observed_allocation_flat;
        ] );
      ( "observation",
        [
          Alcotest.test_case "branch observer" `Quick test_branch_observation;
          Alcotest.test_case "aggregate profile" `Quick test_aggregate_profile_bias;
          Alcotest.test_case "event stream" `Quick test_event_stream_consistency;
          QCheck_alcotest.to_alcotest prop_random_programs_halt;
          QCheck_alcotest.to_alcotest prop_spill_sum_matches_closed_form;
        ] );
    ]
